// Harpoon-style self-configuration of the web workload generator.
#include <gtest/gtest.h>

#include "scenarios/testbed.h"
#include "traffic/web.h"

namespace bb::traffic {
namespace {

scenarios::TestbedConfig big_testbed() {
    scenarios::TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 100'000'000;  // headroom: generator, not the link,
    return cfg;                             // determines the offered load
}

WebSessionGenerator::Config base_cfg(TimeNs stop) {
    WebSessionGenerator::Config cfg;
    cfg.session_rate_per_s = 1.0;  // deliberately far too low for the target
    cfg.objects_per_session_mean = 4.0;
    cfg.object_min_bytes = 10'000;
    cfg.pareto_alpha = 1.5;
    cfg.stop = stop;
    return cfg;
}

TEST(WebSelfConfig, ConvergesTowardTargetOfferedLoad) {
    scenarios::Testbed tb{big_testbed()};
    auto cfg = base_cfg(seconds_i(300));
    cfg.target_offered_bps = 20'000'000;
    cfg.adjust_interval = seconds_i(5);
    WebSessionGenerator gen{tb.sched(),     cfg,           tb.forward_in(),
                            tb.reverse_in(), tb.fwd_demux(), tb.rev_demux(),
                            Rng{1}};
    tb.sched().run_until(seconds_i(310));
    // Offered load over the second half of the run should be near the target.
    const double mean_bps =
        static_cast<double>(gen.bytes_offered()) * 8.0 / 300.0;
    EXPECT_GT(mean_bps, 0.4 * 20e6);
    EXPECT_LT(mean_bps, 2.0 * 20e6);
    // The controller must have raised the session rate well above 1/s.
    EXPECT_GT(gen.session_rate_per_s(), 3.0);
}

TEST(WebSelfConfig, RateStaysFixedWithoutTarget) {
    scenarios::Testbed tb{big_testbed()};
    auto cfg = base_cfg(seconds_i(60));
    cfg.target_offered_bps = 0;
    WebSessionGenerator gen{tb.sched(),     cfg,           tb.forward_in(),
                            tb.reverse_in(), tb.fwd_demux(), tb.rev_demux(),
                            Rng{2}};
    tb.sched().run_until(seconds_i(61));
    EXPECT_DOUBLE_EQ(gen.session_rate_per_s(), 1.0);
}

TEST(WebSelfConfig, ControllerThrottlesWhenOverTarget) {
    scenarios::Testbed tb{big_testbed()};
    auto cfg = base_cfg(seconds_i(200));
    cfg.session_rate_per_s = 50.0;  // way above what the target needs
    cfg.target_offered_bps = 5'000'000;
    cfg.adjust_interval = seconds_i(5);
    WebSessionGenerator gen{tb.sched(),     cfg,           tb.forward_in(),
                            tb.reverse_in(), tb.fwd_demux(), tb.rev_demux(),
                            Rng{3}};
    tb.sched().run_until(seconds_i(210));
    EXPECT_LT(gen.session_rate_per_s(), 50.0);
}

}  // namespace
}  // namespace bb::traffic
