// Sweep-engine tests: spec parsing and axis conflicts, grid expansion order,
// config-hash stability/invalidation, and the on-disk cell cache (cold run
// computes, warm run hits, an edited axis value invalidates only the cells it
// touches).
#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "scenarios/sweep.h"

namespace bb::scenarios {
namespace {

namespace fs = std::filesystem;

constexpr const char* kTwoCellSweep = R"({
  "name": "t",
  "base": {
    "link": {"rate_mbps": 20},
    "traffic": {"kind": "cbr_uniform", "duration_s": 5, "mean_episode_gap_s": 2},
    "run": {"replicas": 1, "seed": 7}
  },
  "axes": {
    "link.discipline": ["drop_tail", "red"]
  }
})";

SweepParseResult parse(const std::string& text) {
    return load_sweep_spec_text(text, "sweep.json");
}

// --- parsing -----------------------------------------------------------------

TEST(SweepParse, AcceptsNameBaseAxes) {
    const auto r = parse(kTwoCellSweep);
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.sweep.name, "t");
    ASSERT_EQ(r.sweep.axes.size(), 1u);
    EXPECT_EQ(r.sweep.axes[0].path, "link.discipline");
    EXPECT_EQ(r.sweep.axes[0].values.size(), 2u);
}

TEST(SweepParse, MissingBaseRejected) {
    const auto r = parse(R"({"axes": {"link.rate_mbps": [10, 20]}})");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("base"), std::string::npos) << r.error;
}

TEST(SweepParse, UnknownTopLevelKeyRejected) {
    const auto r = parse(R"({"base": {}, "axis": {}})");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("unknown key \"axis\""), std::string::npos) << r.error;
}

TEST(SweepParse, EmptyAxisValueListIsAConflict) {
    const auto r = parse(R"({"base": {}, "axes": {"link.rate_mbps": []}})");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("conflicting axis"), std::string::npos) << r.error;
    EXPECT_NE(r.error.find("sweep.json:"), std::string::npos) << r.error;
}

TEST(SweepParse, OverlappingAxisPathsAreAConflict) {
    const auto r = parse(R"({"base": {}, "axes": {
      "link.ge": [1],
      "link.ge.enabled": [true, false]
    }})");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("conflicting axis"), std::string::npos) << r.error;
    EXPECT_NE(r.error.find("link.ge"), std::string::npos) << r.error;
}

TEST(SweepParse, NonScalarAxisValueRejected) {
    const auto r = parse(R"({"base": {}, "axes": {"link.red": [{"weight": 1}]}})");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("must be scalars"), std::string::npos) << r.error;
}

// --- expansion ---------------------------------------------------------------

TEST(SweepExpand, FirstAxisOutermostOrder) {
    const auto r = parse(R"({
      "base": {"traffic": {"duration_s": 5}},
      "axes": {
        "link.discipline": ["drop_tail", "red"],
        "link.ge.enabled": [false, true]
      }
    })");
    ASSERT_TRUE(r.ok) << r.error;
    const auto e = expand_sweep(r.sweep, "sweep.json");
    ASSERT_TRUE(e.ok) << e.error;
    ASSERT_EQ(e.cells.size(), 4u);
    // discipline outermost, ge innermost: (dt,off) (dt,on) (red,off) (red,on)
    EXPECT_EQ(e.cells[0].axis_values[0].second, "drop_tail");
    EXPECT_EQ(e.cells[0].axis_values[1].second, "false");
    EXPECT_EQ(e.cells[1].axis_values[0].second, "drop_tail");
    EXPECT_EQ(e.cells[1].axis_values[1].second, "true");
    EXPECT_EQ(e.cells[2].axis_values[0].second, "red");
    EXPECT_EQ(e.cells[2].axis_values[1].second, "false");
    EXPECT_EQ(e.cells[3].axis_values[0].second, "red");
    EXPECT_EQ(e.cells[3].axis_values[1].second, "true");
    // Axis values land in the resolved spec.
    EXPECT_EQ(e.cells[0].spec.testbed.discipline, QueueDiscipline::drop_tail);
    EXPECT_EQ(e.cells[3].spec.testbed.discipline, QueueDiscipline::red);
    EXPECT_TRUE(e.cells[3].spec.testbed.ge_enabled);
}

TEST(SweepExpand, HashesAreStableAndDistinct) {
    const auto r1 = parse(kTwoCellSweep);
    const auto r2 = parse(kTwoCellSweep);
    ASSERT_TRUE(r1.ok && r2.ok);
    const auto e1 = expand_sweep(r1.sweep, "sweep.json");
    const auto e2 = expand_sweep(r2.sweep, "sweep.json");
    ASSERT_TRUE(e1.ok && e2.ok);
    ASSERT_EQ(e1.cells.size(), 2u);
    EXPECT_EQ(e1.cells[0].config_hash, e2.cells[0].config_hash);
    EXPECT_EQ(e1.cells[1].config_hash, e2.cells[1].config_hash);
    EXPECT_NE(e1.cells[0].config_hash, e1.cells[1].config_hash);
}

TEST(SweepExpand, EditingOneAxisValueInvalidatesOnlyItsCells) {
    const auto before = parse(R"({
      "base": {"traffic": {"duration_s": 5}},
      "axes": {"probe.badabing.p": [0.1, 0.3, 0.5]}
    })");
    const auto after = parse(R"({
      "base": {"traffic": {"duration_s": 5}},
      "axes": {"probe.badabing.p": [0.1, 0.4, 0.5]}
    })");
    ASSERT_TRUE(before.ok && after.ok);
    const auto eb = expand_sweep(before.sweep, "sweep.json");
    const auto ea = expand_sweep(after.sweep, "sweep.json");
    ASSERT_TRUE(eb.ok && ea.ok);
    EXPECT_EQ(eb.cells[0].config_hash, ea.cells[0].config_hash);  // 0.1 untouched
    EXPECT_NE(eb.cells[1].config_hash, ea.cells[1].config_hash);  // 0.3 -> 0.4
    EXPECT_EQ(eb.cells[2].config_hash, ea.cells[2].config_hash);  // 0.5 untouched
}

TEST(SweepExpand, BadAxisValueFailsWithCellDiagnostic) {
    const auto r = parse(R"({
      "base": {"traffic": {"duration_s": 5}},
      "axes": {"link.rate_mbps": [20, -1]}
    })");
    ASSERT_TRUE(r.ok) << r.error;
    const auto e = expand_sweep(r.sweep, "sweep.json");
    ASSERT_FALSE(e.ok);
    EXPECT_NE(e.error.find("rate_mbps"), std::string::npos) << e.error;
}

TEST(SweepExpand, AxisThroughNonObjectFails) {
    const auto r = parse(R"({
      "base": {"link": 3},
      "axes": {"link.rate_mbps": [20]}
    })");
    ASSERT_TRUE(r.ok) << r.error;
    const auto e = expand_sweep(r.sweep, "sweep.json");
    ASSERT_FALSE(e.ok);
    EXPECT_NE(e.error.find("link.rate_mbps"), std::string::npos) << e.error;
}

// --- cached execution --------------------------------------------------------

class SweepRunnerCache : public ::testing::Test {
protected:
    void SetUp() override {
        // Per-test directory names: ctest runs each TEST_F as its own process
        // in parallel, so a shared path would race.
        const std::string test =
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
        out_dir_ = fs::temp_directory_path() / ("bb_sweep_" + test + "_out");
        cache_dir_ = fs::temp_directory_path() / ("bb_sweep_" + test + "_cache");
        fs::remove_all(out_dir_);
        fs::remove_all(cache_dir_);
    }
    void TearDown() override {
        fs::remove_all(out_dir_);
        fs::remove_all(cache_dir_);
    }

    SweepRunner::RunOutcome run(const std::string& text) {
        const auto r = load_sweep_spec_text(text, "sweep.json");
        EXPECT_TRUE(r.ok) << r.error;
        const auto e = expand_sweep(r.sweep, "sweep.json");
        EXPECT_TRUE(e.ok) << e.error;
        SweepRunner runner{{out_dir_.string(), cache_dir_.string(), 1}};
        return runner.run(r.sweep.name, e.cells);
    }

    fs::path out_dir_;
    fs::path cache_dir_;
};

TEST_F(SweepRunnerCache, ColdComputesWarmHitsAndResultsMatch) {
    const auto cold = run(kTwoCellSweep);
    ASSERT_TRUE(cold.ok) << cold.error;
    EXPECT_EQ(cold.computed, 2u);
    EXPECT_EQ(cold.cached, 0u);

    const auto warm = run(kTwoCellSweep);
    ASSERT_TRUE(warm.ok) << warm.error;
    EXPECT_EQ(warm.computed, 0u);
    EXPECT_EQ(warm.cached, 2u);

    ASSERT_EQ(cold.cells.size(), 2u);
    ASSERT_EQ(warm.cells.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(warm.cells[i].config_hash, cold.cells[i].config_hash);
        // The cached result document round-trips the computed one exactly.
        EXPECT_EQ(json_canonical(warm.cells[i].result),
                  json_canonical(cold.cells[i].result));
    }
}

TEST_F(SweepRunnerCache, ChangedAxisValueRecomputesOnlyAffectedCells) {
    const auto cold = run(kTwoCellSweep);
    ASSERT_TRUE(cold.ok) << cold.error;

    // Same sweep with one extra discipline: the two existing cells must be
    // cache hits, only the new cell computes.
    const std::string grown = R"({
      "name": "t",
      "base": {
        "link": {"rate_mbps": 20},
        "traffic": {"kind": "cbr_uniform", "duration_s": 5, "mean_episode_gap_s": 2},
        "run": {"replicas": 1, "seed": 7}
      },
      "axes": {
        "link.discipline": ["drop_tail", "red", "pie"]
      }
    })";
    const auto second = run(grown);
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_EQ(second.cached, 2u);
    EXPECT_EQ(second.computed, 1u);
}

TEST_F(SweepRunnerCache, CorruptCacheEntryIsRecomputedNotTrusted) {
    const auto cold = run(kTwoCellSweep);
    ASSERT_TRUE(cold.ok) << cold.error;

    // Truncate one cache file: the runner must recompute that cell.
    std::size_t corrupted = 0;
    for (const auto& entry : fs::directory_iterator(cache_dir_)) {
        std::FILE* f = std::fopen(entry.path().c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("{not json", f);
        std::fclose(f);
        ++corrupted;
        break;
    }
    ASSERT_EQ(corrupted, 1u);

    const auto again = run(kTwoCellSweep);
    ASSERT_TRUE(again.ok) << again.error;
    EXPECT_EQ(again.computed, 1u);
    EXPECT_EQ(again.cached, 1u);
}

TEST_F(SweepRunnerCache, PerCellResultFilesLandInOutDir) {
    const auto cold = run(kTwoCellSweep);
    ASSERT_TRUE(cold.ok) << cold.error;
    std::set<std::string> names;
    for (const auto& entry : fs::directory_iterator(out_dir_)) {
        names.insert(entry.path().filename().string());
    }
    for (const auto& cell : cold.cells) {
        EXPECT_TRUE(names.contains("t-" + cell.config_hash + ".json"))
            << "missing per-cell result for " << cell.config_hash;
    }
    // Result docs embed their own config hash (the cache-validity token).
    const JsonValue* hash = cold.cells[0].result.find("config_hash");
    ASSERT_NE(hash, nullptr);
    EXPECT_EQ(hash->string_value, cold.cells[0].config_hash);
}

}  // namespace
}  // namespace bb::scenarios
