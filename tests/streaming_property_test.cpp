// Property tests for the streaming pipeline's bit-identity guarantee: for
// random report sequences, random congestion series, and adversarial
// boundary patterns, the online accumulators must agree EXACTLY (==, not
// nearly) with the batch estimators, because both paths reduce to the same
// integer tallies and evaluate the same floating-point expressions.
#include <gtest/gtest.h>

#include <vector>

#include "core/estimators.h"
#include "core/probe_process.h"
#include "core/streaming.h"
#include "core/synthetic.h"
#include "core/validation.h"
#include "measure/episodes.h"
#include "util/rng.h"

namespace bb::core {
namespace {

std::vector<ExperimentResult> random_reports(Rng& rng, std::size_t n,
                                             double extended_fraction) {
    std::vector<ExperimentResult> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        ExperimentResult r;
        if (rng.bernoulli(extended_fraction)) {
            r.kind = ExperimentKind::extended;
            r.code = static_cast<std::uint8_t>(rng.uniform_int(0, 7));
        } else {
            r.kind = ExperimentKind::basic;
            r.code = static_cast<std::uint8_t>(rng.uniform_int(0, 3));
        }
        out.push_back(r);
    }
    return out;
}

void expect_streaming_equals_batch(const std::vector<ExperimentResult>& reports,
                                   const EstimatorOptions& opts) {
    StreamingAnalyzer analyzer{opts};
    StateCounts counts;
    for (const auto& r : reports) {
        analyzer.consume(r);
        counts.add(r);
    }
    const auto res = analyzer.finalize();

    const FrequencyEstimate bf = estimate_frequency(counts, opts);
    EXPECT_EQ(res.frequency.value, bf.value);
    EXPECT_EQ(res.frequency.samples, bf.samples);

    const DurationEstimate bd = estimate_duration_basic(counts, opts);
    EXPECT_EQ(res.duration_basic.slots, bd.slots);
    EXPECT_EQ(res.duration_basic.R, bd.R);
    EXPECT_EQ(res.duration_basic.S, bd.S);
    EXPECT_EQ(res.duration_basic.valid, bd.valid);

    const DurationEstimate bi = estimate_duration_improved(counts, opts);
    EXPECT_EQ(res.duration_improved.slots, bi.slots);
    EXPECT_EQ(res.duration_improved.valid, bi.valid);
    ASSERT_EQ(res.duration_improved.r_hat.has_value(), bi.r_hat.has_value());
    if (bi.r_hat) {
        EXPECT_EQ(*res.duration_improved.r_hat, *bi.r_hat);
    }

    const ValidationReport bv = validate(counts);
    EXPECT_EQ(res.validation.pair_asymmetry, bv.pair_asymmetry);
    EXPECT_EQ(res.validation.transitions, bv.transitions);
    EXPECT_EQ(res.validation.single_rate_spread, bv.single_rate_spread);
    EXPECT_EQ(res.validation.ext_pair_asymmetry, bv.ext_pair_asymmetry);
    EXPECT_EQ(res.validation.violations, bv.violations);
    EXPECT_EQ(res.validation.violation_fraction, bv.violation_fraction);
}

TEST(StreamingEquivalence, RandomReportSequences) {
    Rng rng{0xFEED};
    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = static_cast<std::size_t>(rng.uniform_int(0, 400));
        const double ext = rng.uniform(0.0, 1.0);
        const auto reports = random_reports(rng, n, ext);
        EstimatorOptions opts;
        opts.frequency_from_extended = rng.bernoulli(0.5);
        opts.pairs_from_extended = rng.bernoulli(0.5);
        expect_streaming_equals_batch(reports, opts);
    }
}

TEST(StreamingEquivalence, BoundaryPatterns) {
    // Sequences engineered to stress run boundaries: a 01 transition as the
    // very last report, a 10 transition as the very first, and all-identical
    // runs of every code.
    std::vector<std::vector<ExperimentResult>> cases;
    cases.push_back({{ExperimentKind::basic, 0b10},
                     {ExperimentKind::basic, 0b00},
                     {ExperimentKind::basic, 0b01}});
    cases.push_back({{ExperimentKind::basic, 0b10}});
    cases.push_back({{ExperimentKind::basic, 0b01}});
    cases.push_back({});  // empty report sequence
    for (std::uint8_t code = 0; code < 4; ++code) {
        cases.emplace_back(64, ExperimentResult{ExperimentKind::basic, code});
    }
    for (std::uint8_t code = 0; code < 8; ++code) {
        cases.emplace_back(64, ExperimentResult{ExperimentKind::extended, code});
    }
    for (const auto& reports : cases) {
        for (const bool pairs_ext : {false, true}) {
            EstimatorOptions opts;
            opts.pairs_from_extended = pairs_ext;
            expect_streaming_equals_batch(reports, opts);
        }
    }
}

TEST(StreamingEquivalence, ScorerPipelineMatchesBatchPipeline) {
    // Same seed -> the streaming designer/scorer must emit exactly the report
    // stream the batch design + score path produces, for random congestion
    // series and configs.
    Rng meta{0xABCD};
    for (int trial = 0; trial < 20; ++trial) {
        ProbeProcessConfig cfg;
        cfg.p = meta.uniform(0.05, 1.0);
        cfg.improved = meta.bernoulli(0.5);
        cfg.extended_fraction = meta.uniform(0.0, 1.0);
        const SlotIndex slots = meta.uniform_int(1, 800);
        const std::uint64_t seed = static_cast<std::uint64_t>(meta.uniform_int(1, 1 << 30));

        std::vector<bool> congested(static_cast<std::size_t>(slots));
        const double rho = meta.uniform(0.0, 1.0);
        for (auto&& c : congested) c = meta.bernoulli(rho);

        Rng batch_rng{seed};
        const ProbeDesign design = design_probe_process(batch_rng, slots, cfg);
        const auto batch = score_experiments(design.experiments, [&](SlotIndex s) {
            return congested[static_cast<std::size_t>(s)];
        });

        VectorSink<ExperimentResult> stream;
        StreamingExperimentScorer scorer{Rng{seed}, cfg, stream};
        for (SlotIndex s = 0; s < slots; ++s) {
            scorer.step(congested[static_cast<std::size_t>(s)]);
        }

        ASSERT_EQ(stream.items().size(), batch.size()) << "trial " << trial;
        for (std::size_t i = 0; i < batch.size(); ++i) {
            ASSERT_EQ(stream.items()[i].kind, batch[i].kind) << "trial " << trial;
            ASSERT_EQ(stream.items()[i].code, batch[i].code) << "trial " << trial;
        }
    }
}

TEST(StreamingEquivalence, SyntheticGeneratorMatchesBatchForRandomParams) {
    Rng meta{0x90125};
    for (int trial = 0; trial < 20; ++trial) {
        const double mean_on = meta.uniform(1.0, 40.0);
        const double mean_off = meta.uniform(1.0, 200.0);
        const SlotIndex slots = meta.uniform_int(1, 2000);
        const std::uint64_t seed = static_cast<std::uint64_t>(meta.uniform_int(1, 1 << 30));

        Rng batch_rng{seed};
        const std::vector<bool> batch =
            synth_congestion_series(batch_rng, slots, mean_on, mean_off);
        SyntheticSeriesGen gen{Rng{seed}, mean_on, mean_off};
        SeriesTruthAccumulator acc;
        for (SlotIndex s = 0; s < slots; ++s) {
            const bool c = gen.next();
            ASSERT_EQ(c, batch[static_cast<std::size_t>(s)]) << "trial " << trial;
            acc.consume(c);
        }
        const SeriesTruth bt = series_truth(batch);
        const SeriesTruth st = acc.finalize();
        EXPECT_EQ(st.frequency, bt.frequency);
        EXPECT_EQ(st.mean_duration_slots, bt.mean_duration_slots);
        EXPECT_EQ(st.episodes, bt.episodes);
    }
}

}  // namespace
}  // namespace bb::core

namespace bb::measure {
namespace {

TEST(StreamingEquivalence, EpisodeAccumulatorMatchesBatchForRandomDrops) {
    Rng meta{0x7777};
    for (int trial = 0; trial < 30; ++trial) {
        const TimeNs gap = milliseconds(meta.uniform_int(10, 300));
        const TimeNs slot = milliseconds(meta.uniform_int(1, 20));
        const TimeNs window_end = seconds_i(meta.uniform_int(1, 60));

        std::vector<TimeNs> drops;
        TimeNs t = milliseconds(meta.uniform_int(0, 500));
        while (t < window_end + seconds_i(3)) {
            drops.push_back(t);
            t = t + milliseconds(meta.uniform_int(1, 600));
        }
        if (meta.bernoulli(0.1)) drops.clear();  // occasionally empty

        EpisodeAccumulator acc{{gap, slot, TimeNs::zero(), window_end}};
        for (const TimeNs at : drops) acc.add_drop(at);

        const TruthSummary batch =
            summarize_truth(extract_episodes(drops, gap), slot, TimeNs::zero(), window_end);
        const TruthSummary stream = acc.finalize();
        EXPECT_EQ(stream.frequency, batch.frequency) << "trial " << trial;
        EXPECT_EQ(stream.mean_duration_s, batch.mean_duration_s) << "trial " << trial;
        EXPECT_EQ(stream.sd_duration_s, batch.sd_duration_s) << "trial " << trial;
        EXPECT_EQ(stream.episodes, batch.episodes) << "trial " << trial;
        EXPECT_EQ(stream.total_drops, batch.total_drops) << "trial " << trial;
    }
}

}  // namespace
}  // namespace bb::measure
