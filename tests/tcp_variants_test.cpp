// Congestion-control variants and delayed-ACK behaviour of the TCP substrate.
#include <gtest/gtest.h>

#include "scenarios/testbed.h"
#include "tcp/tcp_flow.h"

namespace bb {
namespace {

using scenarios::Testbed;
using scenarios::TestbedConfig;

TestbedConfig small_testbed() {
    TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 10'000'000;
    cfg.prop_delay = milliseconds(20);
    cfg.buffer_time = milliseconds(50);
    return cfg;
}

struct RunStats {
    std::int64_t bytes;
    std::uint64_t timeouts;
    std::uint64_t fast_rtx;
    std::uint64_t retransmits;
    std::uint64_t acks;
};

RunStats run_variant(tcp::CongestionControl cc, int ack_every = 1,
                     TimeNs horizon = seconds_i(60)) {
    Testbed tb{small_testbed()};
    tcp::TcpConfig cfg;
    cfg.congestion_control = cc;
    cfg.ack_every = ack_every;
    tcp::TcpFlow flow{tb.sched(), 1,           cfg,
                      tb.forward_in(), tb.reverse_in(), tb.fwd_demux(),
                      tb.rev_demux()};
    flow.sender().start(TimeNs::zero());
    tb.sched().run_until(horizon);
    return RunStats{flow.sender().bytes_acked(), flow.sender().timeouts(),
                    flow.sender().fast_retransmits(), flow.sender().retransmits(),
                    flow.receiver().acks_sent()};
}

TEST(TcpVariants, AllVariantsMakeProgressUnderLoss) {
    for (const auto cc : {tcp::CongestionControl::tahoe, tcp::CongestionControl::reno,
                          tcp::CongestionControl::newreno}) {
        const auto s = run_variant(cc);
        EXPECT_GT(s.bytes, 10'000'000) << "variant " << static_cast<int>(cc);
        EXPECT_GT(s.retransmits, 0u) << "variant " << static_cast<int>(cc);
    }
}

TEST(TcpVariants, NewRenoOutperformsTahoe) {
    const auto tahoe = run_variant(tcp::CongestionControl::tahoe);
    const auto newreno = run_variant(tcp::CongestionControl::newreno);
    // Tahoe collapses to cwnd = 1 on every loss event; NewReno's fast
    // recovery retains about half the window, so its goodput is higher.
    EXPECT_GT(newreno.bytes, tahoe.bytes);
}

TEST(TcpVariants, AllUseFastRetransmit) {
    for (const auto cc : {tcp::CongestionControl::tahoe, tcp::CongestionControl::reno,
                          tcp::CongestionControl::newreno}) {
        const auto s = run_variant(cc);
        EXPECT_GT(s.fast_rtx, 0u) << "variant " << static_cast<int>(cc);
        // RTOs should be the exception, not the rule, for a single flow.
        EXPECT_LT(s.timeouts, s.fast_rtx + 10) << "variant " << static_cast<int>(cc);
    }
}

TEST(DelayedAcks, HalveAckTraffic) {
    const auto eager = run_variant(tcp::CongestionControl::newreno, 1);
    const auto delayed = run_variant(tcp::CongestionControl::newreno, 2);
    EXPECT_LT(delayed.acks, eager.acks * 3 / 4);
    // Throughput should not collapse with delayed ACKs.
    EXPECT_GT(delayed.bytes, eager.bytes / 2);
}

TEST(DelayedAcks, TimerFlushesLoneSegment) {
    // A finite 1-segment transfer with ack_every = 2 relies on the delayed
    // ACK timer to complete.
    Testbed tb{small_testbed()};
    tcp::TcpConfig cfg;
    cfg.ack_every = 2;
    cfg.delayed_ack_timeout = milliseconds(100);
    cfg.bytes_to_send = 1500;
    tcp::TcpFlow flow{tb.sched(), 1,           cfg,
                      tb.forward_in(), tb.reverse_in(), tb.fwd_demux(),
                      tb.rev_demux()};
    bool done = false;
    flow.sender().on_complete([&] { done = true; });
    flow.sender().start(TimeNs::zero());
    tb.sched().run_until(seconds_i(5));
    EXPECT_TRUE(done);
    // Completion time ~ one RTT (~41 ms) + the 100 ms delayed-ACK timer, far
    // below the 1 s initial RTO: the timer, not a timeout, delivered the ACK.
    EXPECT_EQ(flow.sender().timeouts(), 0u);
}

TEST(DelayedAcks, OutOfOrderDataStillAckedImmediately) {
    // Duplicate ACK generation must not be delayed, or fast retransmit breaks;
    // verify a lossy run with delayed ACKs still fast-retransmits.
    const auto s = run_variant(tcp::CongestionControl::newreno, 2);
    EXPECT_GT(s.fast_rtx, 0u);
}

}  // namespace
}  // namespace bb
