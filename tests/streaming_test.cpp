// Unit tests for the streaming measurement pipeline: sink adapters, the
// online estimators/validation, the streaming experiment scorer, the
// synthetic series generator, and the online episode/zing accumulators.
#include "core/streaming.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/estimators.h"
#include "core/probe_process.h"
#include "core/report_sink.h"
#include "core/synthetic.h"
#include "measure/episodes.h"
#include "probes/zing.h"
#include "util/rng.h"

namespace bb::core {
namespace {

std::vector<ExperimentResult> crafted_reports() {
    return {
        {ExperimentKind::basic, 0b00},    {ExperimentKind::basic, 0b01},
        {ExperimentKind::basic, 0b10},    {ExperimentKind::basic, 0b11},
        {ExperimentKind::extended, 0b000}, {ExperimentKind::extended, 0b001},
        {ExperimentKind::extended, 0b100}, {ExperimentKind::extended, 0b011},
        {ExperimentKind::extended, 0b110}, {ExperimentKind::extended, 0b111},
    };
}

StateCounts tally(const std::vector<ExperimentResult>& reports) {
    StateCounts c;
    for (const auto& r : reports) c.add(r);
    return c;
}

TEST(Sinks, VectorSinkCollectsInOrder) {
    VectorSink<ExperimentResult> sink;
    for (const auto& r : crafted_reports()) sink.consume(r);
    ASSERT_EQ(sink.items().size(), 10u);
    EXPECT_EQ(sink.items()[3].code, 0b11);
    const auto taken = VectorSink<ExperimentResult>{sink}.take();
    EXPECT_EQ(taken.size(), 10u);
}

TEST(Sinks, TeeSinkFansOut) {
    CountsSink a;
    CountsSink b;
    TeeSink<ExperimentResult> tee;
    tee.add(a);
    tee.add(b);
    for (const auto& r : crafted_reports()) tee.consume(r);
    EXPECT_EQ(a.reports(), 10u);
    EXPECT_EQ(b.reports(), 10u);
    EXPECT_EQ(a.counts().S(), b.counts().S());
}

TEST(Sinks, FnSinkInvokesCallable) {
    int basic = 0;
    auto sink = make_fn_sink<ExperimentResult>([&basic](const ExperimentResult& r) {
        if (r.kind == ExperimentKind::basic) ++basic;
    });
    for (const auto& r : crafted_reports()) sink.consume(r);
    EXPECT_EQ(basic, 4);
}

TEST(Sinks, CountsSinkMatchesManualTally) {
    CountsSink sink;
    for (const auto& r : crafted_reports()) sink.consume(r);
    const StateCounts batch = tally(crafted_reports());
    EXPECT_EQ(sink.counts().R(), batch.R());
    EXPECT_EQ(sink.counts().U(), batch.U());
    EXPECT_EQ(sink.counts().V(), batch.V());
    EXPECT_EQ(sink.reports(), 10u);
}

TEST(OnlineEstimators, FrequencyMatchesBatchExactly) {
    for (const bool from_extended : {false, true}) {
        EstimatorOptions opts;
        opts.frequency_from_extended = from_extended;
        OnlineFrequency online{opts};
        for (const auto& r : crafted_reports()) online.consume(r);
        const FrequencyEstimate batch = estimate_frequency(tally(crafted_reports()), opts);
        const FrequencyEstimate stream = online.finalize();
        EXPECT_EQ(stream.value, batch.value);
        EXPECT_EQ(stream.samples, batch.samples);
    }
}

TEST(OnlineEstimators, DurationMatchesBatchExactly) {
    for (const bool pairs_ext : {false, true}) {
        EstimatorOptions opts;
        opts.pairs_from_extended = pairs_ext;
        OnlineDuration online{opts};
        for (const auto& r : crafted_reports()) online.consume(r);
        const StateCounts counts = tally(crafted_reports());
        const DurationEstimate bb = estimate_duration_basic(counts, opts);
        const DurationEstimate sb = online.finalize_basic();
        EXPECT_EQ(sb.slots, bb.slots);
        EXPECT_EQ(sb.R, bb.R);
        EXPECT_EQ(sb.S, bb.S);
        EXPECT_EQ(sb.valid, bb.valid);
        const DurationEstimate bi = estimate_duration_improved(counts, opts);
        const DurationEstimate si = online.finalize_improved();
        EXPECT_EQ(si.slots, bi.slots);
        EXPECT_EQ(si.valid, bi.valid);
        EXPECT_EQ(si.r_hat.has_value(), bi.r_hat.has_value());
        if (bi.r_hat) {
            EXPECT_EQ(*si.r_hat, *bi.r_hat);
        }
    }
}

TEST(OnlineEstimators, EmptySequenceIsInvalidNotNan) {
    const OnlineFrequency freq;
    EXPECT_FALSE(freq.finalize().valid());
    const OnlineDuration dur;
    EXPECT_FALSE(dur.finalize_basic().valid);
    EXPECT_FALSE(dur.finalize_improved().valid);
    const OnlineValidation val;
    EXPECT_TRUE(val.finalize().acceptable());
}

TEST(OnlineEstimators, AllZeroReportsGiveZeroFrequency) {
    OnlineFrequency freq;
    OnlineDuration dur;
    for (int i = 0; i < 100; ++i) {
        const ExperimentResult r{ExperimentKind::basic, 0b00};
        freq.consume(r);
        dur.consume(r);
    }
    EXPECT_EQ(freq.finalize().value, 0.0);
    EXPECT_EQ(freq.finalize().samples, 100u);
    EXPECT_FALSE(dur.finalize_basic().valid);  // S == 0
}

TEST(OnlineEstimators, ValidationDelegatesToBatch) {
    OnlineValidation online;
    for (const auto& r : crafted_reports()) online.consume(r);
    const ValidationReport batch = validate(tally(crafted_reports()));
    const ValidationReport stream = online.finalize();
    EXPECT_EQ(stream.pair_asymmetry, batch.pair_asymmetry);
    EXPECT_EQ(stream.transitions, batch.transitions);
    EXPECT_EQ(stream.violations, batch.violations);
    EXPECT_EQ(stream.violation_fraction, batch.violation_fraction);
}

TEST(OnlineEstimators, AnalyzerComposesAllThree) {
    StreamingAnalyzer analyzer;
    for (const auto& r : crafted_reports()) analyzer.consume(r);
    const auto res = analyzer.finalize();
    const StateCounts counts = tally(crafted_reports());
    EXPECT_EQ(res.frequency.value, estimate_frequency(counts).value);
    EXPECT_EQ(res.duration_basic.slots, estimate_duration_basic(counts).slots);
    EXPECT_EQ(res.duration_improved.slots, estimate_duration_improved(counts).slots);
    EXPECT_EQ(res.validation.pair_asymmetry, validate(counts).pair_asymmetry);
    EXPECT_EQ(res.reports, 10u);
    EXPECT_EQ(analyzer.counts().basic_total(), counts.basic_total());
}

TEST(OnlineEstimators, EstimatorAccumulatorIsASink) {
    EstimatorAccumulator acc;
    ReportSink& sink = acc;
    for (const auto& r : crafted_reports()) sink.consume(r);
    EXPECT_EQ(acc.counts().basic_total(), 4u);
    EXPECT_EQ(acc.frequency().value, estimate_frequency(tally(crafted_reports())).value);
}

TEST(StreamingScorer, MatchesBatchDesignAndScoring) {
    for (const bool improved : {false, true}) {
        ProbeProcessConfig cfg;
        cfg.p = 0.4;
        cfg.improved = improved;
        const SlotIndex slots = 500;
        std::vector<bool> congested(slots);
        Rng mark_rng{99};
        for (auto&& c : congested) c = mark_rng.bernoulli(0.2);

        Rng batch_rng{1234};
        const ProbeDesign design = design_probe_process(batch_rng, slots, cfg);
        const auto batch = score_experiments(design.experiments, [&](SlotIndex s) {
            return congested[static_cast<std::size_t>(s)];
        });

        VectorSink<ExperimentResult> stream;
        StreamingExperimentScorer scorer{Rng{1234}, cfg, stream};
        for (SlotIndex s = 0; s < slots; ++s) {
            scorer.step(congested[static_cast<std::size_t>(s)]);
        }

        ASSERT_EQ(stream.items().size(), batch.size());
        for (std::size_t i = 0; i < batch.size(); ++i) {
            EXPECT_EQ(stream.items()[i].kind, batch[i].kind);
            EXPECT_EQ(stream.items()[i].code, batch[i].code);
        }
        EXPECT_EQ(scorer.experiments_completed(), batch.size());
        EXPECT_EQ(scorer.slots_seen(), slots);
    }
}

TEST(StreamingScorer, PendingExperimentsDroppedAtEndOfStream) {
    // With p = 1 every slot starts a basic experiment; after N steps the
    // experiment started at the last slot is still pending and must not have
    // been reported.
    ProbeProcessConfig cfg;
    cfg.p = 1.0;
    CountsSink sink;
    StreamingExperimentScorer scorer{Rng{7}, cfg, sink};
    for (int s = 0; s < 10; ++s) scorer.step(false);
    EXPECT_EQ(scorer.experiments_started(), 10u);
    EXPECT_EQ(scorer.experiments_completed(), 9u);
    EXPECT_EQ(scorer.experiments_pending(), 1);
    EXPECT_EQ(sink.reports(), 9u);
}

TEST(StreamingScorer, RejectsInvalidConfig) {
    CountsSink sink;
    ProbeProcessConfig bad;
    bad.p = 0.0;
    EXPECT_THROW((StreamingExperimentScorer{Rng{1}, bad, sink}), std::invalid_argument);
    bad.p = 0.5;
    bad.extended_fraction = 1.5;
    EXPECT_THROW((StreamingExperimentScorer{Rng{1}, bad, sink}), std::invalid_argument);
}

TEST(SyntheticStreaming, GeneratorPrefixMatchesBatchSeries) {
    const SlotIndex slots = 4000;
    Rng batch_rng{42};
    const std::vector<bool> batch = synth_congestion_series(batch_rng, slots, 12.0, 48.0);
    SyntheticSeriesGen gen{Rng{42}, 12.0, 48.0};
    for (SlotIndex s = 0; s < slots; ++s) {
        ASSERT_EQ(gen.next(), batch[static_cast<std::size_t>(s)]) << "slot " << s;
    }
}

TEST(SyntheticStreaming, TruthAccumulatorMatchesBatchTruth) {
    Rng rng{11};
    const std::vector<bool> series = synth_congestion_series(rng, 3000, 8.0, 32.0);
    SeriesTruthAccumulator acc;
    for (const bool c : series) acc.consume(c);
    const SeriesTruth batch = series_truth(series);
    const SeriesTruth stream = acc.finalize();
    EXPECT_EQ(stream.frequency, batch.frequency);
    EXPECT_EQ(stream.mean_duration_slots, batch.mean_duration_slots);
    EXPECT_EQ(stream.episodes, batch.episodes);
    EXPECT_EQ(acc.slots(), 3000u);
}

TEST(SyntheticStreaming, FinalizeMidRunIsPrefixTruth) {
    // finalize() must close the open run without disturbing further consume()s.
    SeriesTruthAccumulator acc;
    const std::vector<bool> series{true, true, false, true};
    acc.consume(series[0]);
    acc.consume(series[1]);
    const SeriesTruth mid = acc.finalize();
    EXPECT_EQ(mid.episodes, 1u);
    EXPECT_EQ(mid.frequency, 1.0);
    acc.consume(series[2]);
    acc.consume(series[3]);
    const SeriesTruth full = acc.finalize();
    EXPECT_EQ(full.episodes, 2u);
    EXPECT_EQ(full.frequency, series_truth(series).frequency);
}

}  // namespace
}  // namespace bb::core

namespace bb::measure {
namespace {

TEST(EpisodeAccumulator, EmptyAndSingleDropEdgeCases) {
    EpisodeAccumulator::Config cfg;
    cfg.gap = milliseconds(100);
    cfg.slot_width = milliseconds(5);
    cfg.window_begin = TimeNs::zero();
    cfg.window_end = seconds_i(10);

    EpisodeAccumulator empty{cfg};
    const TruthSummary none = empty.finalize();
    EXPECT_EQ(none.episodes, 0u);
    EXPECT_EQ(none.frequency, 0.0);

    EpisodeAccumulator one{cfg};
    one.add_drop(seconds_i(1));
    const TruthSummary single = one.finalize();
    EXPECT_EQ(single.episodes, 1u);
    EXPECT_EQ(single.total_drops, 1u);
    EXPECT_EQ(one.drops_seen(), 1u);
}

TEST(EpisodeAccumulator, MatchesBatchExtractAndSummarize) {
    const TimeNs gap = milliseconds(100);
    const TimeNs slot = milliseconds(5);
    const TimeNs window_end = seconds_i(30);

    std::vector<TimeNs> drops;
    Rng rng{2024};
    TimeNs t = milliseconds(50);
    while (t < window_end + seconds_i(2)) {  // some drops past the window
        drops.push_back(t);
        // Mix of intra-episode spacings and episode-terminating gaps.
        t = t + (rng.bernoulli(0.7) ? milliseconds(20) : milliseconds(400));
    }

    EpisodeAccumulator::Config cfg{gap, slot, TimeNs::zero(), window_end};
    EpisodeAccumulator acc{cfg};
    for (const TimeNs at : drops) acc.add_drop(at);

    const TruthSummary batch =
        summarize_truth(extract_episodes(drops, gap), slot, TimeNs::zero(), window_end);
    const TruthSummary stream = acc.finalize();
    EXPECT_EQ(stream.frequency, batch.frequency);
    EXPECT_EQ(stream.mean_duration_s, batch.mean_duration_s);
    EXPECT_EQ(stream.sd_duration_s, batch.sd_duration_s);
    EXPECT_EQ(stream.episodes, batch.episodes);
    EXPECT_EQ(stream.total_drops, batch.total_drops);
}

TEST(EpisodeAccumulator, DegenerateWindowYieldsEmptySummary) {
    EpisodeAccumulator::Config cfg;
    cfg.window_begin = seconds_i(5);
    cfg.window_end = seconds_i(5);  // empty window
    EpisodeAccumulator acc{cfg};
    acc.add_drop(seconds_i(1));
    const TruthSummary s = acc.finalize();
    EXPECT_EQ(s.episodes, 0u);
    EXPECT_EQ(s.frequency, 0.0);
}

}  // namespace
}  // namespace bb::measure

namespace bb::probes {
namespace {

core::ProbeOutcome outcome_at(std::int64_t idx, TimeNs at, bool received) {
    core::ProbeOutcome po;
    po.slot = idx;
    po.send_time = at;
    po.packets_sent = 1;
    po.packets_lost = received ? 0 : 1;
    po.any_received = received;
    return po;
}

TEST(ZingRunAccumulator, FoldsRunsLikeBatchResult) {
    // received pattern: 1 0 0 1 1 0 — one closed 2-run, one open 1-run.
    const std::vector<bool> received{true, false, false, true, true, false};
    ZingRunAccumulator acc;
    for (std::size_t i = 0; i < received.size(); ++i) {
        acc.consume(outcome_at(static_cast<std::int64_t>(i),
                               milliseconds(100 * (static_cast<std::int64_t>(i) + 1)),
                               received[i]));
    }
    const ZingResult res = acc.finalize();
    EXPECT_EQ(res.sent, 6u);
    EXPECT_EQ(res.received, 3u);
    EXPECT_EQ(res.lost, 3u);
    EXPECT_EQ(res.loss_runs, 2u);
    EXPECT_EQ(res.max_run_length, 2u);
    EXPECT_DOUBLE_EQ(res.loss_frequency, 0.5);
    // First run spans probes 1..2 (200 ms -> 300 ms): 0.1 s; open run is a
    // single loss: 0 s.
    EXPECT_DOUBLE_EQ(res.mean_duration_s, 0.05);
}

TEST(ZingRunAccumulator, EmptyAndAllReceivedSequences) {
    const ZingResult empty = ZingRunAccumulator{}.finalize();
    EXPECT_EQ(empty.sent, 0u);
    EXPECT_EQ(empty.loss_frequency, 0.0);

    ZingRunAccumulator acc;
    for (int i = 0; i < 5; ++i) {
        acc.consume(outcome_at(i, milliseconds(10 * (i + 1)), true));
    }
    const ZingResult all = acc.finalize();
    EXPECT_EQ(all.lost, 0u);
    EXPECT_EQ(all.loss_runs, 0u);
    EXPECT_EQ(all.loss_frequency, 0.0);
}

}  // namespace
}  // namespace bb::probes
