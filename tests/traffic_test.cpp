#include <gtest/gtest.h>

#include "measure/loss_monitor.h"
#include "scenarios/testbed.h"
#include "traffic/cbr.h"
#include "traffic/episodic.h"
#include "traffic/web.h"

namespace bb {
namespace {

using scenarios::Testbed;
using scenarios::TestbedConfig;

TestbedConfig testbed_cfg() {
    TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 10'000'000;
    cfg.prop_delay = milliseconds(20);
    cfg.buffer_time = milliseconds(100);
    return cfg;
}

TEST(CbrSource, RateIsAccurate) {
    Testbed tb{testbed_cfg()};
    traffic::CbrSource::Config cfg;
    cfg.rate_bps = 5'000'000;
    cfg.packet_bytes = 1000;
    cfg.stop = seconds_i(10);
    traffic::CbrSource src{tb.sched(), cfg, tb.forward_in()};
    tb.sched().run_until(seconds_i(11));
    // 5 Mb/s for 10 s = 6.25 MB = 6250 packets of 1000 B.
    EXPECT_NEAR(static_cast<double>(src.packets_sent()), 6250.0, 10.0);
}

TEST(CbrSource, BelowCapacityCausesNoLoss) {
    Testbed tb{testbed_cfg()};
    measure::LossMonitor mon{tb.sched(), tb.bottleneck()};
    traffic::CbrSource::Config cfg;
    cfg.rate_bps = 8'000'000;
    cfg.stop = seconds_i(5);
    traffic::CbrSource src{tb.sched(), cfg, tb.forward_in()};
    tb.sched().run_until(seconds_i(6));
    EXPECT_EQ(mon.drops_total(), 0u);
    EXPECT_GT(tb.bottleneck().departures(), 0u);
}

TEST(CbrSource, AboveCapacityLosesTheExcess) {
    Testbed tb{testbed_cfg()};
    measure::LossMonitor mon{tb.sched(), tb.bottleneck()};
    traffic::CbrSource::Config cfg;
    cfg.rate_bps = 20'000'000;  // 2x the 10 Mb/s bottleneck
    cfg.stop = seconds_i(5);
    traffic::CbrSource src{tb.sched(), cfg, tb.forward_in()};
    tb.sched().run_until(seconds_i(6));
    // Half the arrivals are dropped once the buffer fills.
    EXPECT_NEAR(mon.router_loss_rate(), 0.5, 0.05);
}

TEST(EpisodicBurst, RequiresCapacity) {
    Testbed tb{testbed_cfg()};
    traffic::EpisodicBurstSource::Config cfg;
    cfg.bottleneck_capacity_bytes = 0;
    EXPECT_THROW(
        traffic::EpisodicBurstSource(tb.sched(), cfg, tb.forward_in(), Rng{1}),
        std::invalid_argument);
}

TEST(EpisodicBurst, BurstLengthAccountsForFillTime) {
    Testbed tb{testbed_cfg()};
    traffic::EpisodicBurstSource::Config cfg;
    cfg.bottleneck_rate_bps = 10'000'000;
    cfg.bottleneck_capacity_bytes = 125'000;  // 100 ms at 10 Mb/s
    cfg.background_load = 0.5;
    cfg.burst_rate_bps = 30'000'000;
    traffic::EpisodicBurstSource src{tb.sched(), cfg, tb.forward_in(), Rng{1}};
    // Net fill rate = 30 + 5 - 10 = 25 Mb/s; fill = 1 Mb / 25 Mb/s = 40 ms.
    const TimeNs burst = src.burst_length_for(milliseconds(68));
    EXPECT_NEAR(burst.to_millis(), 108.0, 0.5);
}

TEST(EpisodicBurst, ProducesEpisodesOfTargetDuration) {
    Testbed tb{testbed_cfg()};
    measure::LossMonitor mon{tb.sched(), tb.bottleneck()};

    traffic::CbrSource::Config base;
    base.rate_bps = 5'000'000;
    base.stop = seconds_i(120);
    traffic::CbrSource cbr{tb.sched(), base, tb.forward_in()};

    traffic::EpisodicBurstSource::Config cfg;
    cfg.episode_durations = {milliseconds(68)};
    cfg.mean_gap = seconds_i(10);
    cfg.bottleneck_rate_bps = tb.config().bottleneck_rate_bps;
    cfg.bottleneck_capacity_bytes = tb.bottleneck().capacity_bytes();
    cfg.background_load = 0.5;
    cfg.stop = seconds_i(120);
    traffic::EpisodicBurstSource bursts{tb.sched(), cfg, tb.forward_in(), Rng{7}};

    tb.sched().run_until(seconds_i(121));
    ASSERT_GT(bursts.bursts_started(), 3u);

    const auto eps = mon.episodes(milliseconds(100));
    ASSERT_GE(eps.size(), 3u);
    RunningStats dur;
    for (const auto& e : eps) dur.add(e.duration().to_seconds());
    // Engineered episodes should land near 68 ms.
    EXPECT_NEAR(dur.mean(), 0.068, 0.02);
}

TEST(WebSessions, GeneratesLoadAndCompletesObjects) {
    Testbed tb{testbed_cfg()};
    traffic::WebSessionGenerator::Config cfg;
    cfg.session_rate_per_s = 2.0;
    cfg.objects_per_session_mean = 3.0;
    cfg.object_min_bytes = 5'000;
    cfg.stop = seconds_i(30);
    traffic::WebSessionGenerator gen{tb.sched(),     cfg,           tb.forward_in(),
                                     tb.reverse_in(), tb.fwd_demux(), tb.rev_demux(),
                                     Rng{3}};
    tb.sched().run_until(seconds_i(40));
    EXPECT_GT(gen.sessions_started(), 20u);
    EXPECT_GT(gen.objects_started(), gen.sessions_started());
    // Most objects should complete on a lightly loaded link.
    EXPECT_GT(gen.objects_completed(), gen.objects_started() / 2);
    EXPECT_GT(gen.bytes_offered(), 0);
}

TEST(WebSessions, HeavyTailProducesLargeObjects) {
    Testbed tb{testbed_cfg()};
    traffic::WebSessionGenerator::Config cfg;
    cfg.session_rate_per_s = 20.0;
    cfg.object_min_bytes = 10'000;
    cfg.pareto_alpha = 1.2;
    cfg.stop = seconds_i(20);
    traffic::WebSessionGenerator gen{tb.sched(),     cfg,           tb.forward_in(),
                                     tb.reverse_in(), tb.fwd_demux(), tb.rev_demux(),
                                     Rng{5}};
    tb.sched().run_until(seconds_i(21));
    // Mean of Pareto(1.2, 10 kB) = 60 kB >> the minimum: the aggregate must
    // reflect the heavy tail.
    const double mean_object =
        static_cast<double>(gen.bytes_offered()) / static_cast<double>(gen.objects_started());
    EXPECT_GT(mean_object, 25'000.0);
}

}  // namespace
}  // namespace bb
