// Deeper BADABING tool behaviour: re-analysis, skew sensitivity, improved
// design on the simulator, and probe-budget accounting.
#include <gtest/gtest.h>

#include "core/delay_stats.h"
#include "probes/badabing.h"
#include "scenarios/experiment.h"

namespace bb {
namespace {

scenarios::TestbedConfig testbed_cfg() {
    scenarios::TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 10'000'000;
    return cfg;
}

scenarios::WorkloadConfig cbr_workload(std::uint64_t seed, TimeNs duration = seconds_i(120)) {
    scenarios::WorkloadConfig wl;
    wl.kind = scenarios::TrafficKind::cbr_uniform;
    wl.duration = duration;
    wl.seed = seed;
    wl.mean_episode_gap = seconds_i(5);
    return wl;
}

probes::BadabingConfig tool_cfg(double p) {
    probes::BadabingConfig cfg;
    cfg.p = p;
    cfg.total_slots = 0;
    return cfg;
}

TEST(BadabingAnalysis, ReanalysisIsDeterministicAndThresholdMonotone) {
    scenarios::Experiment exp{testbed_cfg(), cbr_workload(1)};
    auto& tool = exp.add_badabing(tool_cfg(0.5));
    exp.run();

    core::MarkingConfig tight;
    tight.alpha = 0.05;
    tight.tau = milliseconds(20);
    core::MarkingConfig loose;
    loose.alpha = 0.3;
    loose.tau = milliseconds(120);

    const auto a1 = tool.analyze(tight);
    const auto a2 = tool.analyze(tight);
    EXPECT_DOUBLE_EQ(a1.frequency.value, a2.frequency.value)
        << "re-analysis of the same run must be deterministic";

    const auto b = tool.analyze(loose);
    EXPECT_GE(b.frequency.value, a1.frequency.value)
        << "more permissive thresholds can only mark more slots";
}

TEST(BadabingAnalysis, SmallClockSkewTolerated) {
    const auto run = [&](double skew_ppm) {
        scenarios::Experiment exp{testbed_cfg(), cbr_workload(2)};
        auto cfg = tool_cfg(0.5);
        cfg.receiver_clock_skew_ppm = skew_ppm;
        auto& tool = exp.add_badabing(cfg);
        exp.run();
        return tool.analyze(exp.default_marking(0.5));
    };
    const auto clean = run(0.0);
    const auto skewed = run(5.0);  // 5 ppm over 120 s = 0.6 ms of drift
    EXPECT_NEAR(skewed.frequency.value, clean.frequency.value,
                0.25 * clean.frequency.value + 1e-4);
}

TEST(BadabingAnalysis, LargeSkewShiftsDelaysVisibly) {
    // 500 ppm over 120 s = 60 ms of drift -- on the order of the 100 ms
    // buffer, so measured queueing delays are visibly corrupted (paper Sec 7:
    // clock synchronization required).
    scenarios::Experiment exp{testbed_cfg(), cbr_workload(3)};
    auto cfg = tool_cfg(0.5);
    cfg.receiver_clock_skew_ppm = 500.0;
    auto& tool = exp.add_badabing(cfg);
    exp.run();
    const auto delays = core::summarize_delays(tool.outcomes());
    ASSERT_TRUE(delays.valid());
    // The true maximum queueing is ~100 ms; skew inflates the spread well
    // beyond that.
    EXPECT_GT(delays.max_queueing_s, 0.13);
}

TEST(BadabingAnalysis, ImprovedDesignValidationCountersPopulated) {
    scenarios::Experiment exp{testbed_cfg(), cbr_workload(4, seconds_i(240))};
    auto cfg = tool_cfg(0.5);
    cfg.improved = true;
    auto& tool = exp.add_badabing(cfg);
    exp.run();
    const auto res = tool.analyze(exp.default_marking(0.5));
    EXPECT_GT(res.counts.extended_total(), 100u);
    EXPECT_GT(res.counts.basic_total(), 100u);
    // The fidelity-model violations (010/101) should be rare under drop-tail
    // episodes longer than a slot.
    EXPECT_LT(res.validation.violation_fraction, 0.05);
}

TEST(BadabingAnalysis, OfferedLoadScalesWithP) {
    double prev = 0.0;
    for (const double p : {0.1, 0.3, 0.5}) {
        scenarios::Experiment exp{testbed_cfg(), cbr_workload(5)};
        auto& tool = exp.add_badabing(tool_cfg(p));
        exp.run();
        const double load = tool.offered_load_fraction(10'000'000);
        EXPECT_GT(load, prev);
        prev = load;
    }
    // Overlapping experiments share probe slots, so the probed-slot fraction
    // is 1 - (1-p)^2 = 0.75 at p = 0.5: 0.75 * 3 * 600 B / 5 ms = 2.16 Mb/s,
    // i.e. ~21.6% of the 10 Mb/s link.
    EXPECT_NEAR(prev, 0.216, 0.02);
}

TEST(BadabingAnalysis, PacketsLostAccountedAgainstProbesSent) {
    scenarios::Experiment exp{testbed_cfg(), cbr_workload(6)};
    auto& tool = exp.add_badabing(tool_cfg(0.5));
    exp.run();
    const auto res = tool.analyze(exp.default_marking(0.5));
    EXPECT_LE(res.packets_lost, res.packets_sent);
    EXPECT_GT(res.packets_lost, 0u) << "probes must see the engineered episodes";
}

TEST(BadabingAnalysis, PairsFromExtendedTightenDuration) {
    scenarios::Experiment exp{testbed_cfg(), cbr_workload(7, seconds_i(240))};
    auto cfg = tool_cfg(0.3);
    cfg.improved = true;
    auto& tool = exp.add_badabing(cfg);
    exp.run();
    core::EstimatorOptions plain;
    core::EstimatorOptions with_pairs;
    with_pairs.pairs_from_extended = true;
    const auto a = tool.analyze(exp.default_marking(0.3), plain);
    const auto b = tool.analyze(exp.default_marking(0.3), with_pairs);
    ASSERT_TRUE(a.duration_basic.valid);
    ASSERT_TRUE(b.duration_basic.valid);
    EXPECT_GT(b.duration_basic.S, a.duration_basic.S)
        << "folding extended pairs must add transition samples";
}

TEST(BadabingAnalysis, DesignIsReproducibleAcrossTools) {
    scenarios::Experiment exp1{testbed_cfg(), cbr_workload(8)};
    scenarios::Experiment exp2{testbed_cfg(), cbr_workload(8)};
    auto& t1 = exp1.add_badabing(tool_cfg(0.3));
    auto& t2 = exp2.add_badabing(tool_cfg(0.3));
    ASSERT_EQ(t1.design().experiments.size(), t2.design().experiments.size());
    for (std::size_t i = 0; i < t1.design().experiments.size(); ++i) {
        EXPECT_EQ(t1.design().experiments[i].start_slot,
                  t2.design().experiments[i].start_slot);
    }
}

}  // namespace
}  // namespace bb
