// util/json tests: the streaming writer's three house styles, the strict
// parser (happy paths and file:line diagnostics), the canonical form that
// keys the sweep cache, and the dotted-path helpers used for axis splicing.
#include <gtest/gtest.h>

#include <string>

#include "util/json.h"

namespace bb {
namespace {

// --- writer ------------------------------------------------------------------

TEST(JsonWriter, CompactStyle) {
    JsonWriter w;
    w.begin_object();
    w.key("a").value_int(1);
    w.key("b").begin_array().value_int(2).value_int(3).end_array();
    w.key("s").value("x");
    w.key("t").value(true);
    w.key("n").value_null();
    w.end_object();
    EXPECT_EQ(w.str(), R"({"a":1,"b":[2,3],"s":"x","t":true,"n":null})");
}

TEST(JsonWriter, PrettyStyleCommaBeforeNewline) {
    JsonWriter w{JsonWriter::Options{2, true}};
    w.begin_object();
    w.key("bench").value("micro");
    w.key("events").value_int(100);
    w.key("rows").begin_array();
    w.begin_object_inline();
    w.key("ms").value_double(1.5, "%.3f");
    w.key("ok").value(false);
    w.end_object();
    w.end_array();
    w.end_object();
    EXPECT_EQ(w.str(),
              "{\n"
              "  \"bench\": \"micro\",\n"
              "  \"events\": 100,\n"
              "  \"rows\": [\n"
              "    {\"ms\": 1.500, \"ok\": false}\n"
              "  ]\n"
              "}");
}

TEST(JsonWriter, InlineContainerInsidePrettyDoc) {
    JsonWriter w{JsonWriter::Options{2, true}};
    w.begin_object();
    w.key("tick").begin_object_inline();
    w.key("new_mev_s").value_double(12.345, "%.3f");
    w.key("speedup").value_double(2.0, "%.3f");
    w.end_object();
    w.key("list").begin_array_inline().value_int(1).value_int(2).end_array();
    w.end_object();
    EXPECT_EQ(w.str(),
              "{\n"
              "  \"tick\": {\"new_mev_s\": 12.345, \"speedup\": 2.000},\n"
              "  \"list\": [1, 2]\n"
              "}");
}

TEST(JsonWriter, EscapesQuotesBackslashesAndControls) {
    JsonWriter w;
    w.begin_object();
    w.key("k\"1").value("a\\b\n\t");
    w.end_object();
    EXPECT_EQ(w.str(), "{\"k\\\"1\":\"a\\\\b\\u000a\\u0009\"}");
}

TEST(JsonWriter, DoubleFormatsMatchHouseStyles) {
    JsonWriter w;
    w.begin_array();
    w.value_double(0.015416666666666667);            // default %.9g
    w.value_double(0.015416666666666667, "%.17g");   // round-trip
    w.value_double(3638.0, "%.6g");
    w.value_uint(12183u);
    w.end_array();
    EXPECT_EQ(w.str(), "[0.0154166667,0.015416666666666667,3638,12183]");
}

// --- parser ------------------------------------------------------------------

TEST(JsonParse, HappyPathRecordsKindsAndPositions) {
    const auto p = json_parse("{\n  \"a\": 1,\n  \"b\": [true, null, 2.5],\n"
                              "  \"c\": \"s\"\n}",
                              "cfg.json");
    ASSERT_TRUE(p.ok) << p.error;
    ASSERT_TRUE(p.value.is_object());
    const JsonValue* a = p.value.find("a");
    ASSERT_NE(a, nullptr);
    EXPECT_TRUE(a->number_is_int);
    EXPECT_EQ(a->int_value, 1);
    EXPECT_EQ(a->line, 2);
    const JsonValue* b = p.value.find("b");
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(b->items.size(), 3u);
    EXPECT_TRUE(b->items[0].is_bool());
    EXPECT_TRUE(b->items[1].is_null());
    EXPECT_FALSE(b->items[2].number_is_int);
    EXPECT_DOUBLE_EQ(b->items[2].number_value, 2.5);
    EXPECT_EQ(b->line, 3);
    EXPECT_EQ(p.value.find("c")->string_value, "s");
}

TEST(JsonParse, NegativeAndExponentNumbers) {
    const auto p = json_parse(R"([-3, 1e3, -2.5e-2, 9223372036854775807])");
    ASSERT_TRUE(p.ok) << p.error;
    EXPECT_EQ(p.value.items[0].int_value, -3);
    EXPECT_FALSE(p.value.items[1].number_is_int);
    EXPECT_DOUBLE_EQ(p.value.items[1].number_value, 1000.0);
    EXPECT_DOUBLE_EQ(p.value.items[2].number_value, -0.025);
    EXPECT_EQ(p.value.items[3].int_value, 9223372036854775807LL);
}

TEST(JsonParse, StringEscapes) {
    const auto p = json_parse(R"(["a\"b", "c\\d", "e\nf", "A"])");
    ASSERT_TRUE(p.ok) << p.error;
    EXPECT_EQ(p.value.items[0].string_value, "a\"b");
    EXPECT_EQ(p.value.items[1].string_value, "c\\d");
    EXPECT_EQ(p.value.items[2].string_value, "e\nf");
    EXPECT_EQ(p.value.items[3].string_value, "A");
}

TEST(JsonParse, ErrorsCarrySourceLineAndColumn) {
    const auto trailing = json_parse("{\"a\": 1,}", "bad.json");
    ASSERT_FALSE(trailing.ok);
    EXPECT_NE(trailing.error.find("bad.json:1:"), std::string::npos) << trailing.error;

    const auto dup = json_parse("{\n\"a\": 1,\n\"a\": 2}", "dup.json");
    ASSERT_FALSE(dup.ok);
    EXPECT_NE(dup.error.find("dup.json:3:"), std::string::npos) << dup.error;
    EXPECT_NE(dup.error.find("duplicate"), std::string::npos) << dup.error;

    const auto garbage = json_parse("{\"a\": 1} extra", "g.json");
    ASSERT_FALSE(garbage.ok);
    EXPECT_NE(garbage.error.find("g.json:1:"), std::string::npos) << garbage.error;

    const auto unterminated = json_parse("{\"a\": \"x", "u.json");
    ASSERT_FALSE(unterminated.ok);
    EXPECT_NE(unterminated.error.find("u.json:"), std::string::npos) << unterminated.error;

    const auto comment = json_parse("// nope\n{}", "c.json");
    ASSERT_FALSE(comment.ok);
}

TEST(JsonParse, MissingFileReportsThroughError) {
    const auto p = json_parse_file("/nonexistent/definitely/missing.json");
    ASSERT_FALSE(p.ok);
    EXPECT_NE(p.error.find("missing.json"), std::string::npos) << p.error;
}

// --- canonical form + hashing -----------------------------------------------

TEST(JsonCanonical, SortsKeysAndRoundTripsNumbers) {
    const auto a = json_parse(R"({"b": 2, "a": {"y": 0.1, "x": [1, 2.5]}})");
    const auto b = json_parse("{\n  \"a\": {\"x\": [1, 2.5], \"y\": 0.1},\n  \"b\": 2\n}");
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_EQ(json_canonical(a.value), json_canonical(b.value));
    EXPECT_EQ(json_canonical(a.value),
              R"({"a":{"x":[1,2.5],"y":0.10000000000000001},"b":2})");
}

TEST(JsonCanonical, DifferentConfigsHashDifferently) {
    const auto a = json_parse(R"({"p": 0.3})");
    const auto b = json_parse(R"({"p": 0.5})");
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_NE(fnv1a64_hex(json_canonical(a.value)), fnv1a64_hex(json_canonical(b.value)));
}

TEST(Fnv1a64, KnownVectors) {
    // Standard FNV-1a test vectors.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(fnv1a64_hex(""), "cbf29ce484222325");
}

// --- dotted-path helpers ------------------------------------------------------

TEST(JsonPath, SetCreatesIntermediateObjectsAndGetReadsBack) {
    auto doc = json_parse("{}").value;
    std::string err;
    ASSERT_TRUE(json_set_path(doc, "link.ge.enabled", JsonValue::of_bool(true), err))
        << err;
    const JsonValue* v = json_get_path(doc, "link.ge.enabled");
    ASSERT_NE(v, nullptr);
    EXPECT_TRUE(v->is_bool());
    EXPECT_TRUE(v->bool_value);
    EXPECT_EQ(json_get_path(doc, "link.missing"), nullptr);
}

TEST(JsonPath, SetOverwritesExistingLeaf) {
    auto doc = json_parse(R"({"probe": {"badabing": {"p": 0.3}}})").value;
    std::string err;
    ASSERT_TRUE(json_set_path(doc, "probe.badabing.p", JsonValue::of_number(0.7), err));
    EXPECT_DOUBLE_EQ(json_get_path(doc, "probe.badabing.p")->number_value, 0.7);
}

TEST(JsonPath, SetThroughNonObjectFails) {
    auto doc = json_parse(R"({"link": 3})").value;
    std::string err;
    EXPECT_FALSE(json_set_path(doc, "link.rate_mbps", JsonValue::of_int(20), err));
    EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace bb
