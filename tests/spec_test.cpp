// Scenario-DSL tests: defaulting, every config layer's validation (one-line
// file:line:key diagnostics), the truth-knob conflict, unknown-key rejection,
// and the build_* factories.
#include <gtest/gtest.h>

#include <string>

#include "scenarios/spec.h"

namespace bb::scenarios {
namespace {

SpecResult parse(const std::string& text) {
    return load_scenario_spec_text(text, "spec.json");
}

// --- defaults ----------------------------------------------------------------

TEST(SpecDefaults, EmptyDocumentYieldsPaperDefaults) {
    const auto r = parse("{}");
    ASSERT_TRUE(r.ok) << r.error;
    const ScenarioSpec& s = r.spec;
    EXPECT_EQ(s.topology, ScenarioSpec::Topology::dumbbell);
    EXPECT_DOUBLE_EQ(s.testbed.bottleneck_rate_bps, 30e6);
    EXPECT_EQ(s.testbed.prop_delay, milliseconds(50));
    EXPECT_EQ(s.testbed.buffer_time, milliseconds(100));
    EXPECT_EQ(s.testbed.discipline, QueueDiscipline::drop_tail);
    EXPECT_FALSE(s.testbed.ge_enabled);
    EXPECT_EQ(s.workload.kind, TrafficKind::cbr_uniform);
    EXPECT_EQ(s.workload.duration, seconds_i(900));
    EXPECT_EQ(s.tool, ScenarioSpec::ProbeTool::badabing);
    EXPECT_DOUBLE_EQ(s.badabing.p, 0.3);
    // DSL default: the probe design is sized to the workload window, unlike
    // the struct default's fixed 900 s design.
    EXPECT_EQ(s.badabing.total_slots, 0);
    EXPECT_EQ(s.replicas, 1u);
    EXPECT_EQ(s.seed, 7u);
    // The run seed is threaded into the workload.
    EXPECT_EQ(s.workload.seed, 7u);
    EXPECT_FALSE(s.marking_alpha.has_value());
    EXPECT_FALSE(s.marking_tau.has_value());
}

TEST(SpecDefaults, NameDefaultsAndOverrides) {
    EXPECT_EQ(parse("{}").spec.name, "scenario");
    EXPECT_EQ(parse(R"({"name": "table4"})").spec.name, "table4");
}

TEST(SpecParse, FullDocumentRoundTrip) {
    const auto r = parse(R"({
      "topology": "dumbbell",
      "link": {
        "rate_mbps": 20, "delay_ms": 40, "buffer_ms": 80,
        "discipline": "red",
        "red": {"min_threshold": 0.2, "max_threshold": 0.8},
        "qbit_block": 100,
        "ge": {"enabled": true, "p_bad_loss": 0.4, "mean_good_s": 5, "mean_bad_ms": 50}
      },
      "traffic": {"kind": "infinite_tcp", "duration_s": 120, "tcp_flows": 12},
      "probe": {"tool": "badabing",
                "badabing": {"p": 0.5, "improved": true, "packets_per_probe": 4}},
      "truth": {"slot_ms": 10, "episode_gap_ms": 200},
      "analysis": {"alpha": 0.1, "tau_ms": 80},
      "run": {"replicas": 4, "threads": 2, "seed": 99}
    })");
    ASSERT_TRUE(r.ok) << r.error;
    const ScenarioSpec& s = r.spec;
    EXPECT_DOUBLE_EQ(s.testbed.bottleneck_rate_bps, 20e6);
    EXPECT_EQ(s.testbed.prop_delay, milliseconds(40));
    EXPECT_EQ(s.testbed.discipline, QueueDiscipline::red);
    EXPECT_DOUBLE_EQ(s.testbed.red.min_threshold, 0.2);
    EXPECT_EQ(s.testbed.qbit_block, 100u);
    EXPECT_TRUE(s.testbed.ge_enabled);
    EXPECT_DOUBLE_EQ(s.testbed.ge.p_bad_loss, 0.4);
    EXPECT_EQ(s.testbed.ge.mean_bad, milliseconds(50));
    EXPECT_EQ(s.workload.kind, TrafficKind::infinite_tcp);
    EXPECT_EQ(s.workload.duration, seconds_i(120));
    EXPECT_EQ(s.workload.tcp_flows, 12);
    EXPECT_DOUBLE_EQ(s.badabing.p, 0.5);
    EXPECT_TRUE(s.badabing.improved);
    EXPECT_EQ(s.badabing.packets_per_probe, 4);
    EXPECT_EQ(s.truth.slot_width, milliseconds(10));
    EXPECT_EQ(s.truth.episode_gap, milliseconds(200));
    ASSERT_TRUE(s.marking_alpha.has_value());
    EXPECT_DOUBLE_EQ(*s.marking_alpha, 0.1);
    ASSERT_TRUE(s.marking_tau.has_value());
    EXPECT_EQ(*s.marking_tau, milliseconds(80));
    EXPECT_EQ(s.replicas, 4u);
    EXPECT_EQ(s.threads, 2u);
    EXPECT_EQ(s.seed, 99u);
    EXPECT_EQ(s.workload.seed, 99u);
}

// --- error paths -------------------------------------------------------------

void expect_error(const std::string& text, const std::string& fragment) {
    const auto r = parse(text);
    ASSERT_FALSE(r.ok) << "expected rejection of " << text;
    EXPECT_NE(r.error.find("spec.json:"), std::string::npos)
        << "diagnostic lacks file:line: " << r.error;
    EXPECT_NE(r.error.find(fragment), std::string::npos)
        << "diagnostic \"" << r.error << "\" lacks \"" << fragment << "\"";
}

TEST(SpecErrors, MalformedJson) {
    const auto r = parse("{\"link\": {\"rate_mbps\": 20,}}");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("spec.json:1:"), std::string::npos) << r.error;
}

TEST(SpecErrors, UnknownKeysNameTheKeyAndLine) {
    expect_error("{\n  \"link\": {\n    \"rate_mbits\": 20\n  }\n}",
                 "unknown key \"rate_mbits\"");
    expect_error(R"({"probes": {}})", "unknown key \"probes\"");
    const auto r = parse("{\n  \"link\": {\n    \"rate_mbits\": 20\n  }\n}");
    EXPECT_NE(r.error.find("spec.json:3:"), std::string::npos) << r.error;
}

TEST(SpecErrors, OutOfRangeLinkParams) {
    expect_error(R"({"link": {"rate_mbps": 0}})", "link.rate_mbps");
    expect_error(R"({"link": {"rate_mbps": -3}})", "link.rate_mbps");
    expect_error(R"({"link": {"buffer_ms": 0}})", "link.buffer_ms");
    expect_error(R"({"link": {"extra_hops": 17}})", "link.extra_hops");
    expect_error(R"({"link": {"discipline": "fq_codel"}})", "must be one of");
    expect_error(R"({"link": {"red": {"min_threshold": 0.9, "max_threshold": 0.2}}})",
                 "min_threshold");
}

TEST(SpecErrors, TypeMismatchesNameTheKey) {
    expect_error(R"({"link": {"rate_mbps": "fast"}})", "must be a number");
    expect_error(R"({"traffic": {"tcp_flows": 2.5}})", "must be an integer");
    expect_error(R"({"link": {"ge": {"enabled": 1}}})", "must be true or false");
    expect_error(R"({"traffic": "tcp"})", "must be an object");
}

TEST(SpecErrors, ProbeAndTrafficRanges) {
    expect_error(R"({"probe": {"badabing": {"p": 0}}})", "badabing.p");
    expect_error(R"({"probe": {"badabing": {"p": 1.5}}})", "badabing.p");
    expect_error(R"({"probe": {"badabing": {"packets_per_probe": 0}}})",
                 "packets_per_probe");
    expect_error(R"({"probe": {"tool": "owamp"}})", "must be one of");
    expect_error(R"({"traffic": {"kind": "voip"}})", "must be one of");
    expect_error(R"({"traffic": {"duration_s": 0}})", "duration_s");
    expect_error(R"({"traffic": {"cbr_background_load": 1.5}})", "cbr_background_load");
}

TEST(SpecErrors, TruthKnobConflict) {
    expect_error(R"({"truth": {"delay_based": true, "bounded_memory": true}})",
                 "incompatible with truth.delay_based");
}

TEST(SpecErrors, Figure3SectionRequiresFigure3Topology) {
    expect_error(R"({"figure3": {"oc12_factor": 4}})",
                 "requires \"topology\": \"figure3\"");
    const auto ok = parse(R"({"topology": "figure3", "figure3": {"oc12_factor": 8}})");
    ASSERT_TRUE(ok.ok) << ok.error;
    EXPECT_EQ(ok.spec.figure3.oc12_factor, 8);
}

TEST(SpecErrors, FirstErrorWins) {
    const auto r = parse("{\n  \"link\": {\"rate_mbps\": 0},\n"
                         "  \"traffic\": {\"duration_s\": 0}\n}");
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("rate_mbps"), std::string::npos) << r.error;
    EXPECT_EQ(r.error.find("duration_s"), std::string::npos) << r.error;
}

// --- factories ---------------------------------------------------------------

TEST(SpecFactory, BuildTestbedHonoursSpec) {
    const auto r = parse(R"({"link": {"rate_mbps": 20, "discipline": "red"}})");
    ASSERT_TRUE(r.ok) << r.error;
    const auto tb = build_testbed(r.spec);
    ASSERT_NE(tb, nullptr);
    EXPECT_DOUBLE_EQ(tb->config().bottleneck_rate_bps, 20e6);
    EXPECT_EQ(tb->config().discipline, QueueDiscipline::red);
}

TEST(SpecFactory, ReplicaPlanCarriesProbeAndEstimator) {
    const auto r = parse(R"({
      "probe": {"badabing": {"p": 0.5, "improved": true}},
      "analysis": {"frequency_from_extended": false},
      "run": {"replicas": 3, "threads": 2, "seed": 11}
    })");
    ASSERT_TRUE(r.ok) << r.error;
    const ReplicaPlan plan = replica_plan_from(r.spec);
    EXPECT_DOUBLE_EQ(plan.probe.p, 0.5);
    EXPECT_TRUE(plan.probe.improved);
    EXPECT_EQ(plan.probe.total_slots, 0);
    EXPECT_FALSE(plan.estimator.frequency_from_extended);
    EXPECT_FALSE(plan.marking.has_value());
    const ReplicaRunner::Config rc = runner_config_from(r.spec);
    EXPECT_EQ(rc.replicas, 3u);
    EXPECT_EQ(rc.threads, 2u);
    EXPECT_EQ(rc.master_seed, 11u);
}

TEST(SpecFactory, ExplicitMarkingFlowsThrough) {
    const auto r = parse(R"({"analysis": {"alpha": 0.2, "tau_ms": 40}})");
    ASSERT_TRUE(r.ok) << r.error;
    const auto marking = marking_for(r.spec);
    EXPECT_DOUBLE_EQ(marking.alpha, 0.2);
    EXPECT_EQ(marking.tau, milliseconds(40));
    const ReplicaPlan plan = replica_plan_from(r.spec);
    ASSERT_TRUE(plan.marking.has_value());
    EXPECT_DOUBLE_EQ(plan.marking->alpha, 0.2);
}

}  // namespace
}  // namespace bb::scenarios
