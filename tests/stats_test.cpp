#include "util/stats.h"

#include <gtest/gtest.h>

namespace bb {
namespace {

TEST(RunningStats, EmptyIsZero) {
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, SingleValue) {
    RunningStats s;
    s.add(42.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance with n-1 denominator: sum sq dev = 32, /7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, HandlesNegativeValues) {
    RunningStats s;
    s.add(-3.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(TimeSeries, MeanOverWindow) {
    TimeSeries ts;
    ts.add(0.0, 1.0);
    ts.add(1.0, 2.0);
    ts.add(2.0, 3.0);
    ts.add(3.0, 100.0);
    EXPECT_DOUBLE_EQ(ts.mean_over(0.0, 3.0), 2.0);  // half-open window
    EXPECT_DOUBLE_EQ(ts.max_value(), 100.0);
    EXPECT_EQ(ts.size(), 4u);
}

TEST(TimeSeries, EmptyWindowYieldsZero) {
    TimeSeries ts;
    ts.add(10.0, 5.0);
    EXPECT_DOUBLE_EQ(ts.mean_over(0.0, 1.0), 0.0);
}

TEST(Quantile, EdgeCases) {
    EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(quantile({7.0}, 0.5), 7.0);
    EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0}, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0}, 1.0), 3.0);
}

TEST(Quantile, MedianAndInterpolation) {
    EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
    // Quartile of {10,20,30,40}: position 0.25*3 = 0.75 -> 10 + 0.75*10.
    EXPECT_DOUBLE_EQ(quantile({10.0, 20.0, 30.0, 40.0}, 0.25), 17.5);
}

TEST(Quantile, UnsortedInputIsHandled) {
    EXPECT_DOUBLE_EQ(quantile({9.0, 1.0, 5.0, 3.0, 7.0}, 0.5), 5.0);
}

}  // namespace
}  // namespace bb
