// The paper's headline comparisons, encoded as assertions on short runs so
// the reproduction's *shape* claims (EXPERIMENTS.md) are continuously
// checked, not just printed by the benches.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "scenarios/experiment.h"

namespace bb {
namespace {

using scenarios::Experiment;
using scenarios::TestbedConfig;
using scenarios::TrafficKind;
using scenarios::WorkloadConfig;

TestbedConfig testbed() {
    TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 20'000'000;
    return cfg;
}

WorkloadConfig cbr_workload() {
    WorkloadConfig wl;
    wl.kind = TrafficKind::cbr_uniform;
    wl.duration = seconds_i(300);
    wl.seed = 12;
    wl.mean_episode_gap = seconds_i(6);
    return wl;
}

double rel_err(double est, double truth) {
    return truth > 0 ? std::abs(est - truth) / truth : 0.0;
}

TEST(Headline, BadabingBeatsZingOnFrequencyAtMatchedRate) {
    // Table 8's core claim.
    const auto wl = cbr_workload();

    Experiment bb_exp{testbed(), wl};
    probes::BadabingConfig bc;
    bc.p = 0.3;
    bc.total_slots = 0;
    auto& tool = bb_exp.add_badabing(bc);
    bb_exp.run();
    const auto bb_truth = bb_exp.truth();
    const auto bb_res = tool.analyze(bb_exp.default_marking(0.3));

    Experiment z_exp{testbed(), wl};
    probes::ZingProber::Config zc;
    zc.packet_bytes = 600;
    zc.mean_interval = seconds(1.0 / (0.3 * 2.0 * 3.0 / 0.005));
    auto& zing = z_exp.add_zing(zc);
    z_exp.run();
    const auto z_truth = z_exp.truth();
    const auto z_res = zing.result();

    EXPECT_LT(rel_err(bb_res.frequency.value, bb_truth.frequency),
              rel_err(z_res.loss_frequency, z_truth.frequency))
        << "BADABING must estimate episode frequency better than ZING";
}

TEST(Headline, BadabingBeatsZingOnDurationAtMatchedRate) {
    const auto wl = cbr_workload();

    Experiment bb_exp{testbed(), wl};
    probes::BadabingConfig bc;
    bc.p = 0.3;
    bc.total_slots = 0;
    auto& tool = bb_exp.add_badabing(bc);
    bb_exp.run();
    const auto bb_truth = bb_exp.truth();
    const auto bb_res = tool.analyze(bb_exp.default_marking(0.3));
    ASSERT_TRUE(bb_res.duration_basic.valid);

    Experiment z_exp{testbed(), wl};
    probes::ZingProber::Config zc;
    zc.packet_bytes = 600;
    zc.mean_interval = seconds(1.0 / (0.3 * 2.0 * 3.0 / 0.005));
    auto& zing = z_exp.add_zing(zc);
    z_exp.run();
    const auto z_truth = z_exp.truth();
    const auto z_res = zing.result();

    EXPECT_LT(rel_err(bb_res.duration_basic.seconds(tool.slot_width()),
                      bb_truth.mean_duration_s),
              rel_err(z_res.mean_duration_s, z_truth.mean_duration_s))
        << "ZING's duration estimate collapses; BADABING's must not";
    // The collapse itself (Table 8's most dramatic cell).
    EXPECT_LT(z_res.mean_duration_s, 0.5 * z_truth.mean_duration_s);
}

TEST(Headline, LongerProbesSeeLossMoreReliably) {
    // Figure 7's claim, as an assertion.
    const auto miss_rate = [&](int packets) {
        auto wl = cbr_workload();
        wl.duration = seconds_i(200);
        Experiment exp{testbed(), wl};
        probes::FixedIntervalProber::Config pc;
        pc.interval = milliseconds(10);
        pc.packets_per_probe = packets;
        auto& prober = exp.add_fixed_prober(pc);
        exp.run();
        const auto episodes = exp.episodes();
        std::size_t in_ep = 0;
        std::size_t unscathed = 0;
        auto it = episodes.begin();
        for (const auto& po : prober.outcomes()) {
            while (it != episodes.end() && it->end < po.send_time) ++it;
            if (it == episodes.end()) break;
            if (po.send_time >= it->start && po.send_time <= it->end) {
                ++in_ep;
                if (!po.any_lost()) ++unscathed;
            }
        }
        return in_ep > 0 ? static_cast<double>(unscathed) / static_cast<double>(in_ep)
                         : 1.0;
    };
    const double one = miss_rate(1);
    const double four = miss_rate(4);
    EXPECT_GT(one, 0.2) << "single packets should often survive episodes";
    EXPECT_LT(four, one) << "longer probes must miss fewer episodes";
}

TEST(Headline, HeavyProbeTrainsPerturbTheLossProcess) {
    // Figure 8's claim: 10-packet trains at 10 ms change what they measure.
    // Depending on the regime the reactive cross traffic either loses more
    // (paper's testbed) or yields to the probe load and loses less; either
    // way the loss process the probes report is materially different from
    // the unprobed one.
    struct Out {
        double freq;
        double cross_drops;
        std::uint64_t probe_drops;
    };
    const auto run = [&](int packets) {
        auto wl = WorkloadConfig{};
        wl.kind = TrafficKind::infinite_tcp;
        wl.duration = seconds_i(120);
        wl.seed = 3;
        wl.tcp_flows = 8;
        Experiment exp{testbed(), wl};
        if (packets > 0) {
            probes::FixedIntervalProber::Config pc;
            pc.interval = milliseconds(10);
            pc.packets_per_probe = packets;
            exp.add_fixed_prober(pc);
        }
        exp.run();
        return Out{exp.truth().frequency,
                   static_cast<double>(exp.monitor().cross_traffic_drops()),
                   exp.monitor().probe_drops()};
    };
    const auto baseline = run(0);
    const auto heavy = run(10);
    EXPECT_GT(heavy.probe_drops, 0u);
    const double freq_shift = std::abs(heavy.freq - baseline.freq) /
                              std::max(baseline.freq, 1e-9);
    const double drop_shift = std::abs(heavy.cross_drops - baseline.cross_drops) /
                              std::max(baseline.cross_drops, 1.0);
    EXPECT_GT(std::max(freq_shift, drop_shift), 0.1)
        << "a 10-packet train every 10 ms must visibly change the loss process";
}

TEST(Headline, PermissiveThresholdsRaiseFrequencyEstimates) {
    // Figure 9's claim on the real tool output.
    const auto wl = cbr_workload();
    Experiment exp{testbed(), wl};
    probes::BadabingConfig bc;
    bc.p = 0.5;
    bc.total_slots = 0;
    auto& tool = exp.add_badabing(bc);
    exp.run();

    double prev = -1.0;
    for (const double alpha : {0.05, 0.10, 0.20}) {
        core::MarkingConfig m;
        m.alpha = alpha;
        m.tau = milliseconds(80);
        const double f = tool.analyze(m).frequency.value;
        EXPECT_GE(f, prev);
        prev = f;
    }
}

}  // namespace
}  // namespace bb
