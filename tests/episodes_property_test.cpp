// Property-based tests for loss-episode extraction: invariants that must
// hold for arbitrary drop patterns, checked over randomized inputs.
#include <gtest/gtest.h>

#include <algorithm>

#include "measure/episodes.h"
#include "util/rng.h"

namespace bb::measure {
namespace {

struct FuzzParams {
    std::uint64_t seed;
    int drops;
    double spread_s;  // drops uniform over [0, spread]
    std::int64_t gap_ms;
};

class EpisodeFuzz : public ::testing::TestWithParam<FuzzParams> {};

std::vector<TimeNs> random_drops(const FuzzParams& p) {
    Rng rng{p.seed};
    std::vector<TimeNs> drops;
    drops.reserve(static_cast<std::size_t>(p.drops));
    for (int i = 0; i < p.drops; ++i) {
        drops.push_back(seconds(rng.uniform(0.0, p.spread_s)));
    }
    std::sort(drops.begin(), drops.end());
    return drops;
}

TEST_P(EpisodeFuzz, EpisodesPartitionDrops) {
    const auto drops = random_drops(GetParam());
    const TimeNs gap = milliseconds(GetParam().gap_ms);
    const auto eps = extract_episodes(drops, gap);
    std::uint64_t covered = 0;
    for (const auto& e : eps) covered += e.drops;
    EXPECT_EQ(covered, drops.size());
}

TEST_P(EpisodeFuzz, EpisodesAreOrderedAndSeparatedByGap) {
    const auto drops = random_drops(GetParam());
    const TimeNs gap = milliseconds(GetParam().gap_ms);
    const auto eps = extract_episodes(drops, gap);
    for (std::size_t i = 0; i < eps.size(); ++i) {
        EXPECT_LE(eps[i].start, eps[i].end);
        if (i > 0) {
            EXPECT_GT(eps[i].start - eps[i - 1].end, gap)
                << "adjacent episodes must be separated by more than the gap";
        }
    }
}

TEST_P(EpisodeFuzz, EveryDropFallsInsideSomeEpisode) {
    const auto drops = random_drops(GetParam());
    const TimeNs gap = milliseconds(GetParam().gap_ms);
    const auto eps = extract_episodes(drops, gap);
    for (const TimeNs d : drops) {
        const bool inside = std::any_of(eps.begin(), eps.end(), [d](const LossEpisode& e) {
            return d >= e.start && d <= e.end;
        });
        EXPECT_TRUE(inside);
    }
}

TEST_P(EpisodeFuzz, LargerGapNeverIncreasesEpisodeCount) {
    const auto drops = random_drops(GetParam());
    const TimeNs gap = milliseconds(GetParam().gap_ms);
    const auto fine = extract_episodes(drops, gap);
    const auto coarse = extract_episodes(drops, gap * 4);
    EXPECT_LE(coarse.size(), fine.size());
}

TEST_P(EpisodeFuzz, FrequencyWithinUnitIntervalAndConsistentWithSlots) {
    const auto drops = random_drops(GetParam());
    const TimeNs gap = milliseconds(GetParam().gap_ms);
    const auto eps = extract_episodes(drops, gap);
    const TimeNs window = seconds(GetParam().spread_s) + seconds_i(1);
    const auto truth = summarize_truth(eps, milliseconds(5), TimeNs::zero(), window);
    EXPECT_GE(truth.frequency, 0.0);
    EXPECT_LE(truth.frequency, 1.0);

    const auto slots = congestion_slots(eps, milliseconds(5), TimeNs::zero(), window);
    const auto marked = static_cast<double>(std::count(slots.begin(), slots.end(), true));
    EXPECT_NEAR(truth.frequency, marked / static_cast<double>(slots.size()), 1e-12);
}

TEST_P(EpisodeFuzz, DelayBasedNeverSplitsFurther) {
    const auto drops = random_drops(GetParam());
    const TimeNs gap = milliseconds(GetParam().gap_ms);
    Rng rng{GetParam().seed ^ 0xD};
    // Random departures with random queueing delays between drops.
    std::vector<DelayedDeparture> deps;
    for (int i = 0; i < 200; ++i) {
        deps.push_back({seconds(rng.uniform(0.0, GetParam().spread_s)),
                        milliseconds(rng.uniform_int(0, 100))});
    }
    std::sort(deps.begin(), deps.end(),
              [](const DelayedDeparture& a, const DelayedDeparture& b) { return a.at < b.at; });
    const auto plain = extract_episodes(drops, gap);
    const auto merged = extract_episodes_delay_based(drops, deps, milliseconds(90), gap);
    EXPECT_LE(merged.size(), plain.size());
    std::uint64_t covered = 0;
    for (const auto& e : merged) covered += e.drops;
    EXPECT_EQ(covered, drops.size());
}

INSTANTIATE_TEST_SUITE_P(Fuzz, EpisodeFuzz,
                         ::testing::Values(FuzzParams{1, 0, 10.0, 100},
                                           FuzzParams{2, 1, 10.0, 100},
                                           FuzzParams{3, 50, 10.0, 100},
                                           FuzzParams{4, 500, 10.0, 100},
                                           FuzzParams{5, 500, 1.0, 100},   // dense
                                           FuzzParams{6, 500, 1000.0, 100},  // sparse
                                           FuzzParams{7, 200, 10.0, 5},
                                           FuzzParams{8, 200, 10.0, 2000}));

}  // namespace
}  // namespace bb::measure
