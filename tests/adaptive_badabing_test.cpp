#include "probes/adaptive_badabing.h"

#include <gtest/gtest.h>

#include "scenarios/experiment.h"
#include "scenarios/testbed.h"
#include "scenarios/workload.h"

namespace bb {
namespace {

scenarios::TestbedConfig testbed_cfg() {
    scenarios::TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 10'000'000;
    return cfg;
}

probes::AdaptiveBadabingConfig adaptive_cfg() {
    probes::AdaptiveBadabingConfig cfg;
    cfg.p = 0.4;
    cfg.evaluation_interval = seconds_i(20);
    cfg.stopping.min_transitions = 30;
    cfg.stopping.tolerance = 0.35;
    cfg.marking.tau = milliseconds(20);
    cfg.marking.alpha = 0.1;
    return cfg;
}

TEST(AdaptiveBadabing, StopsValidOnceEnoughEvidenceAccumulates) {
    scenarios::Testbed tb{testbed_cfg()};
    scenarios::WorkloadConfig wl;
    wl.kind = scenarios::TrafficKind::cbr_uniform;
    wl.duration = seconds_i(900);
    wl.seed = 1;
    wl.mean_episode_gap = seconds_i(4);  // frequent episodes: evidence accrues fast
    scenarios::Workload workload{tb, wl};

    auto cfg = adaptive_cfg();
    cfg.max_duration = seconds_i(900);
    probes::AdaptiveBadabingTool tool{tb.sched(), cfg, tb.forward_in(), Rng{2}};
    tb.fwd_demux().bind(cfg.flow, tool);

    tb.sched().run_until(seconds_i(902));
    EXPECT_TRUE(tool.stopped());
    EXPECT_EQ(tool.decision(), core::StoppingRule::Decision::stop_valid);
    EXPECT_LT(tool.stopped_at(), seconds_i(900)) << "should stop before the hard cap";
    EXPECT_GT(tool.probes_sent(), 0u);

    const auto snap = tool.snapshot();
    EXPECT_GT(snap.frequency.value, 0.0);
    EXPECT_TRUE(snap.duration_basic.valid);
}

TEST(AdaptiveBadabing, HardCapOnQuietPath) {
    scenarios::Testbed tb{testbed_cfg()};  // no cross traffic at all
    auto cfg = adaptive_cfg();
    cfg.max_duration = seconds_i(60);
    probes::AdaptiveBadabingTool tool{tb.sched(), cfg, tb.forward_in(), Rng{3}};
    tb.fwd_demux().bind(cfg.flow, tool);
    tb.sched().run_until(seconds_i(62));
    EXPECT_TRUE(tool.stopped());
    EXPECT_EQ(tool.decision(), core::StoppingRule::Decision::keep_going)
        << "no transitions ever appear on an idle path";
    const auto snap = tool.snapshot();
    EXPECT_DOUBLE_EQ(snap.frequency.value, 0.0);
}

TEST(AdaptiveBadabing, StopsProbingAfterDecision) {
    scenarios::Testbed tb{testbed_cfg()};
    scenarios::WorkloadConfig wl;
    wl.kind = scenarios::TrafficKind::cbr_uniform;
    wl.duration = seconds_i(600);
    wl.seed = 4;
    wl.mean_episode_gap = seconds_i(4);
    scenarios::Workload workload{tb, wl};

    auto cfg = adaptive_cfg();
    probes::AdaptiveBadabingTool tool{tb.sched(), cfg, tb.forward_in(), Rng{5}};
    tb.fwd_demux().bind(cfg.flow, tool);
    tb.sched().run_until(seconds_i(602));
    ASSERT_TRUE(tool.stopped());
    const auto sent_at_stop = tool.probes_sent();
    tb.sched().run_until(seconds_i(650));
    EXPECT_EQ(tool.probes_sent(), sent_at_stop) << "no probes after stopping";
}

TEST(AdaptiveBadabing, ExperimentRateMatchesP) {
    scenarios::Testbed tb{testbed_cfg()};
    auto cfg = adaptive_cfg();
    cfg.p = 0.25;
    cfg.max_duration = seconds_i(100);
    probes::AdaptiveBadabingTool tool{tb.sched(), cfg, tb.forward_in(), Rng{6}};
    tb.fwd_demux().bind(cfg.flow, tool);
    tb.sched().run_until(seconds_i(102));
    const double slots = 100.0 / 0.005;
    EXPECT_NEAR(static_cast<double>(tool.experiments_started()) / slots, 0.25, 0.02);
}

}  // namespace
}  // namespace bb
