// CoDel discipline tests (Nichols/Jacobson, ACM Queue 2012).  The central
// property test pins the interval/sqrt(count) drop schedule: with a standing
// queue held constant by arrivals at exactly the service rate, successive
// head drops must be spaced interval/sqrt(k) apart (up to the 1 ms
// transmission quantum of the test link).
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "sim/aqm.h"
#include "sim/queue_base.h"

namespace bb {
namespace {

constexpr std::int64_t kRate = 8'000'000;    // 1000 B <=> 1 ms
constexpr std::int64_t kCapacity = 100'000;  // 100 packets; never reached here

sim::QueueBase::LinkConfig link_cfg() {
    sim::QueueBase::LinkConfig cfg;
    cfg.rate_bps = kRate;
    cfg.prop_delay = milliseconds(1);
    cfg.capacity_bytes = kCapacity;
    return cfg;
}

class Pump {
public:
    Pump(sim::Scheduler& sched, sim::PacketSink& out, TimeNs start, TimeNs gap, int count,
         bool ect = false)
        : sched_{&sched}, out_{&out}, gap_{gap}, remaining_{count}, ect_{ect} {
        sched_->schedule_at(start, [this] { step(); });
    }

private:
    void step() {
        if (remaining_-- <= 0) return;
        sim::Packet p;
        p.id = 1'000'000 + ++id_;
        p.size_bytes = 1000;
        p.ecn_ect = ect_;
        out_->accept(p);
        sched_->schedule_after(gap_, [this] { step(); });
    }

    sim::Scheduler* sched_;
    sim::PacketSink* out_;
    TimeNs gap_;
    int remaining_;
    bool ect_;
    std::uint64_t id_{0};
};

// Initial burst that builds the standing queue; the caller's pump then sends
// arrivals at exactly the service rate, so the queue length changes only when
// CoDel drops a head.
void standing_queue_workload(sim::Scheduler& sched, sim::QueueBase& queue, int burst) {
    sched.schedule_at(TimeNs::zero(), [&queue, burst] {
        for (int i = 0; i < burst; ++i) {
            sim::Packet p;
            p.id = static_cast<std::uint64_t>(i) + 1;
            p.size_bytes = 1000;
            queue.accept(p);
        }
    });
}

TEST(CoDelQueue, RejectsNonPositiveInterval) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    sim::CoDelParams params;
    params.interval = TimeNs::zero();
    EXPECT_THROW(sim::CoDelQueue(sched, link_cfg(), params, sink),
                 std::invalid_argument);
}

TEST(CoDelQueue, NoDropsWhileSojournBelowTarget) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    sim::CoDelQueue queue{sched, link_cfg(), sim::CoDelParams{}, sink};
    Pump pump{sched, queue, TimeNs::zero(), milliseconds(2), 2000};  // 50% load
    sched.run();
    EXPECT_EQ(queue.drops(), 0u);
    EXPECT_FALSE(queue.dropping());
    EXPECT_EQ(queue.arrivals(), queue.departures());
}

TEST(CoDelQueue, FirstDropAfterSojournAboveTargetForOneInterval) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    sim::CoDelQueue queue{sched, link_cfg(), sim::CoDelParams{}, sink};
    std::vector<TimeNs> drop_times;
    queue.on_drop([&](const sim::QueueEvent& ev) { drop_times.push_back(ev.at); });
    Pump pump{sched, queue, microseconds(500), milliseconds(1), 3000};
    standing_queue_workload(sched, queue, 30);
    sched.run();
    ASSERT_FALSE(drop_times.empty());
    // Head sojourn first crosses target (5 ms) at the 5th transmission; the
    // first drop fires one full interval (100 ms) later, modulo the 1 ms
    // dequeue quantum.
    EXPECT_GE(drop_times.front(), milliseconds(100));
    EXPECT_LE(drop_times.front(), milliseconds(120));
    EXPECT_EQ(queue.drops(), queue.head_drops()) << "all drops must be head drops";
}

TEST(CoDelQueue, DropScheduleFollowsInverseSqrtLaw) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    sim::CoDelQueue queue{sched, link_cfg(), sim::CoDelParams{}, sink};
    std::vector<TimeNs> drop_times;
    queue.on_drop([&](const sim::QueueEvent& ev) { drop_times.push_back(ev.at); });
    Pump pump{sched, queue, microseconds(500), milliseconds(1), 3000};
    standing_queue_workload(sched, queue, 30);
    sched.run();
    ASSERT_GE(drop_times.size(), 9u);
    const double interval_s = milliseconds(100).to_seconds();
    for (std::size_t k = 1; k <= 8; ++k) {
        const double gap = (drop_times[k] - drop_times[k - 1]).to_seconds();
        const double expected = interval_s / std::sqrt(static_cast<double>(k));
        // One transmission quantum (1 ms) of realization slack on each
        // endpoint plus control_law rounding.
        EXPECT_NEAR(gap, expected, 0.003)
            << "gap after drop " << k << " deviates from interval/sqrt(count)";
        if (k >= 2) {
            const double prev_gap = (drop_times[k - 1] - drop_times[k - 2]).to_seconds();
            EXPECT_LE(gap, prev_gap + 0.002) << "drop spacing must tighten over the episode";
        }
    }
}

TEST(CoDelQueue, ExitsDroppingOnceStandingQueueDissolves) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    sim::CoDelQueue queue{sched, link_cfg(), sim::CoDelParams{}, sink};
    std::vector<TimeNs> drop_times;
    queue.on_drop([&](const sim::QueueEvent& ev) { drop_times.push_back(ev.at); });
    Pump pump{sched, queue, microseconds(500), milliseconds(1), 3000};
    standing_queue_workload(sched, queue, 30);
    sched.run();
    // Each drop permanently shortens the standing queue by one packet
    // (arrivals exactly match the service rate), so once the sojourn falls
    // below target the episode ends: roughly 25 drops, all within ~1 s.
    EXPECT_GE(queue.head_drops(), 15u);
    EXPECT_LE(queue.head_drops(), 35u);
    EXPECT_FALSE(queue.dropping());
    ASSERT_FALSE(drop_times.empty());
    EXPECT_LT(drop_times.back(), seconds_i(2)) << "dropping must stop well before the end";
    EXPECT_EQ(queue.arrivals(), queue.drops() + queue.departures());
}

TEST(CoDelQueue, EcnMarksHeadInsteadOfDropping) {
    sim::Scheduler sched;
    std::uint64_t delivered_ce = 0;
    class CeCounter final : public sim::PacketSink {
    public:
        explicit CeCounter(std::uint64_t& ce) : ce_{&ce} {}
        void accept(const sim::Packet& p) override {
            if (p.ecn_ce) ++*ce_;
        }

    private:
        std::uint64_t* ce_;
    } sink{delivered_ce};
    sim::CoDelParams params;
    params.ecn = true;
    sim::CoDelQueue queue{sched, link_cfg(), params, sink};
    Pump pump{sched, queue, microseconds(500), milliseconds(1), 3000, /*ect=*/true};
    standing_queue_workload(sched, queue, 30);
    sched.run();
    // Marked heads are transmitted, so the standing queue never dissolves and
    // the mark schedule keeps accelerating for the whole run.
    EXPECT_GT(queue.marks(), 50u);
    EXPECT_EQ(queue.drops(), 0u);
    EXPECT_EQ(queue.head_drops(), 0u);
    EXPECT_EQ(delivered_ce, queue.marks());
    EXPECT_GT(queue.drop_count(), 10u) << "count bookkeeping must advance on marks too";
}

TEST(CoDelQueue, DeterministicAcrossIdenticalRuns) {
    const auto run = [&] {
        sim::Scheduler sched;
        sim::CountingSink sink;
        sim::CoDelQueue queue{sched, link_cfg(), sim::CoDelParams{}, sink};
        std::vector<std::int64_t> drop_ns;
        queue.on_drop([&](const sim::QueueEvent& ev) { drop_ns.push_back(ev.at.ns()); });
        Pump pump{sched, queue, microseconds(500), milliseconds(1), 3000};
        standing_queue_workload(sched, queue, 30);
        sched.run();
        return drop_ns;
    };
    EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace bb
