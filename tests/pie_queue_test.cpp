// PIE discipline tests (RFC 8033 simplified controller) plus the
// make_queue() factory matrix.  The link is sized so one 1000-byte packet
// takes exactly 1 ms to serialize, which makes queue occupancy and delay
// arithmetic exact in the assertions.
#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/aqm.h"
#include "sim/link.h"
#include "sim/queue_base.h"
#include "traffic/cbr.h"

namespace bb {
namespace {

constexpr std::int64_t kRate = 8'000'000;       // 1000 B <=> 1 ms
constexpr std::int64_t kCapacity = 100'000;     // 100 packets / 100 ms

sim::QueueBase::LinkConfig link_cfg() {
    sim::QueueBase::LinkConfig cfg;
    cfg.rate_bps = kRate;
    cfg.prop_delay = milliseconds(1);
    cfg.capacity_bytes = kCapacity;
    return cfg;
}

// Deterministic packet pump: one fixed-size packet every `gap`.
class Pump {
public:
    Pump(sim::Scheduler& sched, sim::PacketSink& out, TimeNs gap, int count,
         bool ect = false)
        : sched_{&sched}, out_{&out}, gap_{gap}, remaining_{count}, ect_{ect} {
        sched_->schedule_at(TimeNs::zero(), [this] { step(); });
    }

private:
    void step() {
        if (remaining_-- <= 0) return;
        sim::Packet p;
        p.id = ++id_;
        p.size_bytes = 1000;
        p.ecn_ect = ect_;
        out_->accept(p);
        sched_->schedule_after(gap_, [this] { step(); });
    }

    sim::Scheduler* sched_;
    sim::PacketSink* out_;
    TimeNs gap_;
    int remaining_;
    bool ect_;
    std::uint64_t id_{0};
};

class CeCounter final : public sim::PacketSink {
public:
    void accept(const sim::Packet& p) override {
        ++total_;
        if (p.ecn_ce) ++ce_;
    }
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
    [[nodiscard]] std::uint64_t ce() const noexcept { return ce_; }

private:
    std::uint64_t total_{0};
    std::uint64_t ce_{0};
};

TEST(MakeQueue, FactoryBuildsTheSelectedDiscipline) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    auto cfg = link_cfg();

    cfg.discipline = sim::QueueDiscipline::drop_tail;
    EXPECT_NE(dynamic_cast<sim::BottleneckQueue*>(make_queue(sched, cfg, sink).get()),
              nullptr);
    cfg.discipline = sim::QueueDiscipline::red;
    EXPECT_NE(dynamic_cast<sim::RedQueue*>(make_queue(sched, cfg, sink).get()), nullptr);
    cfg.discipline = sim::QueueDiscipline::pie;
    EXPECT_NE(dynamic_cast<sim::PieQueue*>(make_queue(sched, cfg, sink).get()), nullptr);
    cfg.discipline = sim::QueueDiscipline::codel;
    EXPECT_NE(dynamic_cast<sim::CoDelQueue*>(make_queue(sched, cfg, sink).get()), nullptr);
}

TEST(PieQueue, RejectsNonPositiveUpdateInterval) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    sim::PieParams params;
    params.update_interval = TimeNs::zero();
    EXPECT_THROW(sim::PieQueue(sched, link_cfg(), params, sink, Rng{1}),
                 std::invalid_argument);
}

TEST(PieQueue, StaysInactiveUnderLightLoad) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    sim::PieQueue queue{sched, link_cfg(), sim::PieParams{}, sink, Rng{1}};
    Pump pump{sched, queue, milliseconds(2), 2500};  // 50% load for 5 s
    sched.run();
    EXPECT_FALSE(queue.active());
    EXPECT_EQ(queue.updates(), 0u);
    EXPECT_EQ(queue.drops(), 0u);
    EXPECT_EQ(queue.arrivals(), queue.departures());
}

TEST(PieQueue, ActivatesShedsAndThenDeactivates) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    sim::PieParams params;
    params.burst_allowance = TimeNs::zero();
    sim::PieQueue queue{sched, link_cfg(), params, sink, Rng{2}};
    Pump pump{sched, queue, microseconds(500), 3000};  // 2x overload for 1.5 s
    double max_prob = 0.0;
    for (int t = 0; t < 1500; t += 50) {
        sched.schedule_at(milliseconds(t), [&] {
            max_prob = std::max(max_prob, queue.drop_probability());
        });
    }
    // run() returning at all proves the periodic update deactivated itself
    // once the queue drained (otherwise the event loop never empties).
    sched.run();
    EXPECT_GT(queue.updates(), 10u);
    EXPECT_GT(queue.early_drops(), 0u);
    EXPECT_GT(max_prob, 0.0);
    EXPECT_FALSE(queue.active());
    EXPECT_EQ(queue.drop_probability(), 0.0);
    EXPECT_EQ(queue.arrivals(), queue.drops() + queue.departures());
}

TEST(PieQueue, ControlsStandingQueueWhereDropTailPins) {
    // Under sustained 2x overload drop-tail pins the buffer at capacity while
    // PIE's controller sheds arrivals until the standing queue sits near the
    // delay target (15 ms, i.e. 15 packets here).
    const auto occupancy_late_in_run = [&](bool pie) {
        sim::Scheduler sched;
        sim::CountingSink sink;
        std::unique_ptr<sim::QueueBase> queue;
        if (pie) {
            sim::PieParams params;
            params.burst_allowance = TimeNs::zero();
            queue = std::make_unique<sim::PieQueue>(sched, link_cfg(), params, sink, Rng{3});
        } else {
            queue = std::make_unique<sim::BottleneckQueue>(sched, link_cfg(), sink);
        }
        Pump pump{sched, *queue, microseconds(500), 6000};  // 2x overload for 3 s
        std::int64_t sampled = 0;
        sched.schedule_at(milliseconds(2900), [&] { sampled = queue->queue_bytes(); });
        sched.run();
        return sampled;
    };
    EXPECT_LT(occupancy_late_in_run(true), 60'000);
    EXPECT_GT(occupancy_late_in_run(false), 90'000);
}

TEST(PieQueue, SameSeedReproducesDropsExactly) {
    const auto run = [&](std::uint64_t seed) {
        sim::Scheduler sched;
        sim::CountingSink sink;
        sim::PieParams params;
        params.burst_allowance = TimeNs::zero();
        sim::PieQueue queue{sched, link_cfg(), params, sink, Rng{seed}};
        Pump pump{sched, queue, microseconds(500), 3000};
        sched.run();
        return std::pair{queue.drops(), queue.departures()};
    };
    EXPECT_EQ(run(7), run(7));
}

TEST(PieQueue, EcnMarksWhileProbabilityModerateThenDrops) {
    sim::Scheduler sched;
    CeCounter sink;
    sim::PieParams params;
    params.burst_allowance = TimeNs::zero();
    params.ecn = true;
    sim::PieQueue queue{sched, link_cfg(), params, sink, Rng{4}};
    Pump pump{sched, queue, microseconds(500), 5000, /*ect=*/true};
    sched.run();
    // While drop_prob < ecn_mark_ceiling the early signal rides on CE; once
    // the ramp passes the ceiling (sustained overload, no sender backoff
    // here) PIE must shed real load again.
    EXPECT_GT(queue.early_marks(), 0u);
    EXPECT_GT(queue.early_drops(), 0u);
    // A mark verdict on a full physical buffer is overridden into a tail
    // drop by the base (the overflow check runs after admit), so the applied
    // count can trail the verdict count — never exceed it.
    EXPECT_GT(queue.marks(), 0u);
    EXPECT_LE(queue.marks(), queue.early_marks());
    // Every applied mark reaches the far side as a CE-stamped packet.
    EXPECT_EQ(sink.ce(), queue.marks());
}

TEST(PieQueue, NonEctPacketsAreNeverMarked) {
    sim::Scheduler sched;
    CeCounter sink;
    sim::PieParams params;
    params.burst_allowance = TimeNs::zero();
    params.ecn = true;
    sim::PieQueue queue{sched, link_cfg(), params, sink, Rng{5}};
    Pump pump{sched, queue, microseconds(500), 5000, /*ect=*/false};
    sched.run();
    EXPECT_EQ(queue.marks(), 0u);
    EXPECT_EQ(queue.early_marks(), 0u);
    EXPECT_EQ(sink.ce(), 0u);
    EXPECT_GT(queue.drops(), 0u);
}

TEST(PieQueue, BurstAllowancePassesShortBursts) {
    sim::Scheduler sched;
    sim::CountingSink sink;
    sim::PieParams params;
    params.burst_allowance = milliseconds(500);
    sim::PieQueue queue{sched, link_cfg(), params, sink, Rng{6}};
    Pump pump{sched, queue, microseconds(500), 180};  // 90 ms burst, max ~88 pkts
    sched.run();
    EXPECT_GT(queue.updates(), 0u) << "burst must have activated the controller";
    EXPECT_EQ(queue.early_drops(), 0u);
    EXPECT_EQ(queue.drops(), 0u);
    EXPECT_EQ(queue.arrivals(), queue.departures());
}

}  // namespace
}  // namespace bb
