// TCP substrate under hostile conditions: severe loss, tiny buffers, many
// flows, finite transfers racing congestion.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "scenarios/testbed.h"
#include "tcp/tcp_flow.h"
#include "traffic/cbr.h"

namespace bb {
namespace {

using scenarios::Testbed;
using scenarios::TestbedConfig;

TEST(TcpStress, SurvivesTinyBuffer) {
    TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 10'000'000;
    cfg.buffer_time = milliseconds(5);  // ~4 packets of buffer
    Testbed tb{cfg};
    tcp::TcpConfig tcfg;
    tcp::TcpFlow flow{tb.sched(), 1,           tcfg,
                      tb.forward_in(), tb.reverse_in(), tb.fwd_demux(),
                      tb.rev_demux()};
    flow.sender().start(TimeNs::zero());
    tb.sched().run_until(seconds_i(60));
    // Heavy loss, but the connection must keep moving data.
    EXPECT_GT(flow.sender().bytes_acked(), 5'000'000);
    EXPECT_GT(flow.sender().retransmits(), 10u);
}

TEST(TcpStress, FiniteTransferCompletesDespiteCompetingOverload) {
    TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 10'000'000;
    Testbed tb{cfg};
    // Competing CBR at 95% of the link: the TCP flow fights for scraps.
    traffic::CbrSource::Config cbr;
    cbr.rate_bps = 9'500'000;
    cbr.flow = 99;
    cbr.stop = seconds_i(300);
    traffic::CbrSource src{tb.sched(), cbr, tb.forward_in()};

    tcp::TcpConfig tcfg;
    tcfg.bytes_to_send = 200 * 1500;
    tcp::TcpFlow flow{tb.sched(), 1,           tcfg,
                      tb.forward_in(), tb.reverse_in(), tb.fwd_demux(),
                      tb.rev_demux()};
    bool done = false;
    flow.sender().on_complete([&] { done = true; });
    flow.sender().start(seconds_i(1));
    tb.sched().run_until(seconds_i(300));
    EXPECT_TRUE(done) << "transfer must eventually complete";
}

TEST(TcpStress, ManyFlowsAllMakeProgress) {
    TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 20'000'000;
    Testbed tb{cfg};
    tcp::TcpConfig tcfg;
    std::vector<std::unique_ptr<tcp::TcpFlow>> flows;
    for (sim::FlowId f = 1; f <= 30; ++f) {
        flows.push_back(std::make_unique<tcp::TcpFlow>(tb.sched(), f, tcfg, tb.forward_in(),
                                                       tb.reverse_in(), tb.fwd_demux(),
                                                       tb.rev_demux()));
        flows.back()->sender().start(milliseconds(37 * f));
    }
    tb.sched().run_until(seconds_i(120));
    std::int64_t total = 0;
    for (const auto& flow : flows) {
        EXPECT_GT(flow->sender().bytes_acked(), 500'000)
            << "every flow must get a share";
        total += flow->sender().bytes_acked();
    }
    // Aggregate goodput near the link rate (data includes retransmissions
    // overhead, so allow slack).
    EXPECT_GT(static_cast<double>(total) * 8.0 / 120.0, 15e6);
}

TEST(TcpStress, ReceiverDeliveredNeverExceedsSent) {
    TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 10'000'000;
    cfg.buffer_time = milliseconds(20);
    Testbed tb{cfg};
    tcp::TcpConfig tcfg;
    tcp::TcpFlow flow{tb.sched(), 1,           tcfg,
                      tb.forward_in(), tb.reverse_in(), tb.fwd_demux(),
                      tb.rev_demux()};
    flow.sender().start(TimeNs::zero());
    tb.sched().run_until(seconds_i(30));
    EXPECT_LE(flow.receiver().bytes_delivered(),
              static_cast<std::int64_t>(flow.sender().segments_sent()) * 1500);
    EXPECT_LE(flow.sender().bytes_acked(), flow.receiver().bytes_delivered());
}

TEST(TcpStress, NoRunawayRetransmissionStorm) {
    TestbedConfig cfg;
    cfg.bottleneck_rate_bps = 10'000'000;
    cfg.buffer_time = milliseconds(10);
    Testbed tb{cfg};
    tcp::TcpConfig tcfg;
    tcp::TcpFlow flow{tb.sched(), 1,           tcfg,
                      tb.forward_in(), tb.reverse_in(), tb.fwd_demux(),
                      tb.rev_demux()};
    flow.sender().start(TimeNs::zero());
    tb.sched().run_until(seconds_i(60));
    // Retransmissions should stay a small fraction of all segments.
    const double rtx_fraction = static_cast<double>(flow.sender().retransmits()) /
                                static_cast<double>(flow.sender().segments_sent());
    EXPECT_LT(rtx_fraction, 0.15);
}

TEST(TcpStress, SenderStopsWhenReceiverWindowExhausted) {
    // No ACKs ever return (reverse path unbound): the sender must stall at
    // min(cwnd, rwnd) and retransmit via RTO, not spin.
    sim::Scheduler sched;
    sim::CountingSink void_sink;
    tcp::TcpConfig tcfg;
    tcfg.rwnd_segments = 8;
    tcp::TcpSender sender{sched, 1, tcfg, void_sink};
    sender.start(TimeNs::zero());
    sched.run_until(seconds_i(10));
    // Initial window (2 segments) plus a bounded number of RTO retransmits.
    EXPECT_LT(sender.segments_sent(), 30u);
    EXPECT_GT(sender.timeouts(), 0u);
}

}  // namespace
}  // namespace bb
