#include "core/markov.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/estimators.h"
#include "core/probe_process.h"
#include "core/synthetic.h"

namespace bb::core {
namespace {

TEST(PairTally, BasicExperimentsYieldOnePairEach) {
    std::vector<ExperimentResult> results{
        {ExperimentKind::basic, 0b00},
        {ExperimentKind::basic, 0b01},
        {ExperimentKind::basic, 0b10},
        {ExperimentKind::basic, 0b11},
    };
    const auto t = tally_pairs(results);
    EXPECT_EQ(t.n00, 1u);
    EXPECT_EQ(t.n01, 1u);
    EXPECT_EQ(t.n10, 1u);
    EXPECT_EQ(t.n11, 1u);
    EXPECT_EQ(t.total(), 4u);
}

TEST(PairTally, ExtendedExperimentsYieldTwoPairs) {
    // 110 -> pairs (1,1) and (1,0); 011 -> (0,1) and (1,1).
    std::vector<ExperimentResult> results{
        {ExperimentKind::extended, 0b110},
        {ExperimentKind::extended, 0b011},
    };
    const auto t = tally_pairs(results);
    EXPECT_EQ(t.n11, 2u);
    EXPECT_EQ(t.n10, 1u);
    EXPECT_EQ(t.n01, 1u);
    EXPECT_EQ(t.n00, 0u);
}

TEST(PairTally, Accumulate) {
    PairTally a{1, 2, 3, 4};
    const PairTally b{10, 20, 30, 40};
    a += b;
    EXPECT_EQ(a.n00, 11u);
    EXPECT_EQ(a.n11, 44u);
}

TEST(MarkovEstimate, HandComputedChain) {
    // a = P(0->1) = 20/(180+20) = 0.1; b = P(1->0) = 20/(20+60) = 0.25.
    PairTally t;
    t.n00 = 180;
    t.n01 = 20;
    t.n10 = 20;
    t.n11 = 60;
    const auto est = estimate_markov(t);
    ASSERT_TRUE(est.valid);
    EXPECT_DOUBLE_EQ(est.a, 0.1);
    EXPECT_DOUBLE_EQ(est.b, 0.25);
    EXPECT_DOUBLE_EQ(est.frequency, 0.1 / 0.35);
    EXPECT_DOUBLE_EQ(est.duration_slots, 4.0);
    EXPECT_DOUBLE_EQ(est.duration_seconds(milliseconds(5)), 0.02);
}

TEST(MarkovEstimate, UnidentifiableCases) {
    EXPECT_FALSE(estimate_markov(PairTally{}).valid);
    // Congestion never observed ending.
    PairTally never_ends;
    never_ends.n00 = 100;
    never_ends.n01 = 5;
    never_ends.n11 = 10;
    EXPECT_FALSE(estimate_markov(never_ends).valid);
    // No congestion at all.
    PairTally all_clear;
    all_clear.n00 = 100;
    EXPECT_FALSE(estimate_markov(all_clear).valid);
}

TEST(MarkovEstimate, RecoversSyntheticGeometricProcess) {
    // The synthetic series is exactly the model's alternating-geometric
    // process, so the MLE must recover frequency and duration.
    Rng rng{5};
    const SlotIndex n = 2'000'000;
    const double mean_on = 12.0;
    const double mean_off = 988.0;
    const auto series = synth_congestion_series(rng, n, mean_on, mean_off);
    ProbeProcessConfig pcfg;
    pcfg.p = 0.4;
    pcfg.improved = true;
    const auto design = design_probe_process(rng, n, pcfg);
    const auto obs =
        observe_with_fidelity(design.experiments, series, FidelityModel{1.0, 1.0}, rng);
    const auto est = estimate_markov(tally_pairs(obs));
    const auto truth = series_truth(series);
    ASSERT_TRUE(est.valid);
    EXPECT_NEAR(est.frequency, truth.frequency, 0.1 * truth.frequency);
    EXPECT_NEAR(est.duration_slots, truth.mean_duration_slots,
                0.1 * truth.mean_duration_slots);
}

TEST(MarkovEstimate, MoreEfficientThanMomentEstimatorAtSameBudget) {
    // With extended experiments contributing two pairs each, the Markov MLE
    // uses strictly more information; check it is at least as accurate on
    // average over a few seeds.
    double markov_err = 0.0;
    double moment_err = 0.0;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
        Rng rng{seed + 77};
        const SlotIndex n = 400'000;
        const auto series = synth_congestion_series(rng, n, 12.0, 988.0);
        ProbeProcessConfig pcfg;
        pcfg.p = 0.3;
        pcfg.improved = true;
        const auto design = design_probe_process(rng, n, pcfg);
        const auto obs =
            observe_with_fidelity(design.experiments, series, FidelityModel{1.0, 1.0}, rng);
        const auto truth = series_truth(series);

        const auto markov = estimate_markov(tally_pairs(obs));
        StateCounts counts;
        for (const auto& r : obs) counts.add(r);
        const auto moment = estimate_duration_basic(counts);
        if (markov.valid) {
            markov_err += std::abs(markov.duration_slots - truth.mean_duration_slots);
        }
        if (moment.valid) {
            moment_err += std::abs(moment.slots - truth.mean_duration_slots);
        }
    }
    EXPECT_LE(markov_err, moment_err * 1.2);
}

}  // namespace
}  // namespace bb::core
