#include "util/func.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

namespace bb {
namespace {

TEST(UniqueFunction, DefaultConstructedIsEmpty) {
    UniqueFunction<void()> f;
    EXPECT_FALSE(static_cast<bool>(f));
    EXPECT_FALSE(f.is_inline());
}

TEST(UniqueFunction, InvokesSmallTargetInline) {
    int hits = 0;
    UniqueFunction<void()> f{[&hits] { ++hits; }};
    ASSERT_TRUE(static_cast<bool>(f));
    EXPECT_TRUE(f.is_inline());
    f();
    f();
    EXPECT_EQ(hits, 2);
}

TEST(UniqueFunction, ReturnsValuesAndTakesArguments) {
    UniqueFunction<int(int, int)> add{[](int a, int b) { return a + b; }};
    EXPECT_EQ(add(2, 3), 5);
}

TEST(UniqueFunction, CapturesUpTo48BytesStayInline) {
    std::array<std::uint64_t, 6> payload{1, 2, 3, 4, 5, 6};  // exactly 48 bytes
    UniqueFunction<std::uint64_t()> f{[payload] { return payload[5]; }};
    EXPECT_TRUE(f.is_inline());
    EXPECT_EQ(f(), 6u);
}

TEST(UniqueFunction, LargeCapturesFallBackToHeap) {
    std::array<std::uint64_t, 8> payload{};  // 64 bytes > inline buffer
    payload[7] = 42;
    UniqueFunction<std::uint64_t()> f{[payload] { return payload[7]; }};
    EXPECT_FALSE(f.is_inline());
    EXPECT_EQ(f(), 42u);
}

TEST(UniqueFunction, HoldsMoveOnlyCallables) {
    auto ptr = std::make_unique<int>(7);
    UniqueFunction<int()> f{[p = std::move(ptr)] { return *p; }};
    EXPECT_EQ(f(), 7);
}

TEST(UniqueFunction, MoveTransfersTargetAndEmptiesSource) {
    int hits = 0;
    UniqueFunction<void()> a{[&hits] { ++hits; }};
    UniqueFunction<void()> b{std::move(a)};
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(hits, 1);

    UniqueFunction<void()> c;
    c = std::move(b);
    c();
    EXPECT_EQ(hits, 2);
}

TEST(UniqueFunction, MoveAssignmentDestroysPreviousTarget) {
    auto counter = std::make_shared<int>(0);
    struct Bump {
        std::shared_ptr<int> n;
        ~Bump() {
            if (n) ++*n;
        }
        Bump(std::shared_ptr<int> p) : n{std::move(p)} {}
        Bump(Bump&&) = default;
        void operator()() const {}
    };
    UniqueFunction<void()> f{Bump{counter}};
    f = UniqueFunction<void()>{[] {}};
    // The Bump target (and any moved-from shells) must all be destroyed, and
    // exactly one of them still held the shared_ptr.
    EXPECT_EQ(*counter, 1);
    EXPECT_EQ(counter.use_count(), 1);
}

TEST(UniqueFunction, ResetDestroysTarget) {
    auto token = std::make_shared<int>(1);
    UniqueFunction<void()> f{[token] {}};
    EXPECT_EQ(token.use_count(), 2);
    f.reset();
    EXPECT_EQ(token.use_count(), 1);
    EXPECT_FALSE(static_cast<bool>(f));
}

TEST(UniqueFunction, HeapTargetDestroyedExactlyOnce) {
    auto token = std::make_shared<int>(1);
    std::array<std::uint64_t, 8> pad{};  // force the heap path
    {
        UniqueFunction<void()> f{[token, pad] { (void)pad; }};
        EXPECT_FALSE(f.is_inline());
        EXPECT_EQ(token.use_count(), 2);
        UniqueFunction<void()> g{std::move(f)};
        EXPECT_EQ(token.use_count(), 2);  // moved pointer, not copied target
    }
    EXPECT_EQ(token.use_count(), 1);
}

TEST(UniqueFunction, ExceptionsPropagate) {
    UniqueFunction<void()> f{[] { throw std::runtime_error{"boom"}; }};
    EXPECT_THROW(f(), std::runtime_error);
}

TEST(UniqueFunction, SelfMoveAssignmentIsSafe) {
    int hits = 0;
    UniqueFunction<void()> f{[&hits] { ++hits; }};
    auto& self = f;
    f = std::move(self);
    ASSERT_TRUE(static_cast<bool>(f));
    f();
    EXPECT_EQ(hits, 1);
}

TEST(UniqueFunction, ReferenceCapturesSeeLiveState) {
    std::string log;
    UniqueFunction<void(const std::string&)> append{
        [&log](const std::string& s) { log += s; }};
    append("a");
    append("b");
    EXPECT_EQ(log, "ab");
}

}  // namespace
}  // namespace bb
