#include "util/time.h"

#include <gtest/gtest.h>

namespace bb {
namespace {

TEST(TimeNs, FactoryFunctionsProduceExpectedNanoseconds) {
    EXPECT_EQ(nanoseconds(7).ns(), 7);
    EXPECT_EQ(microseconds(3).ns(), 3'000);
    EXPECT_EQ(milliseconds(5).ns(), 5'000'000);
    EXPECT_EQ(seconds_i(2).ns(), 2'000'000'000);
    EXPECT_EQ(seconds(1.5).ns(), 1'500'000'000);
}

TEST(TimeNs, FractionalSecondsRoundToNearest) {
    EXPECT_EQ(seconds(1e-9).ns(), 1);
    EXPECT_EQ(seconds(2.4e-9).ns(), 2);
    EXPECT_EQ(seconds(2.6e-9).ns(), 3);
    EXPECT_EQ(seconds(-1.5e-9).ns(), -2);
}

TEST(TimeNs, ArithmeticIsExact) {
    const TimeNs a = milliseconds(5);
    const TimeNs b = microseconds(30);
    EXPECT_EQ((a + b).ns(), 5'030'000);
    EXPECT_EQ((a - b).ns(), 4'970'000);
    EXPECT_EQ((a * 3).ns(), 15'000'000);
    EXPECT_EQ(3 * a, a * 3);
}

TEST(TimeNs, DivisionYieldsSlotCount) {
    EXPECT_EQ(seconds_i(900) / milliseconds(5), 180'000);
    EXPECT_EQ(milliseconds(9) / milliseconds(5), 1);  // truncation
}

TEST(TimeNs, ComparisonsAreTotal) {
    EXPECT_LT(milliseconds(1), milliseconds(2));
    EXPECT_EQ(milliseconds(1), microseconds(1000));
    EXPECT_GT(TimeNs::max(), seconds_i(1'000'000));
    EXPECT_EQ(TimeNs::zero().ns(), 0);
}

TEST(TimeNs, ConversionsBackToFloating) {
    EXPECT_DOUBLE_EQ(milliseconds(1500).to_seconds(), 1.5);
    EXPECT_DOUBLE_EQ(microseconds(2500).to_millis(), 2.5);
}

TEST(TimeNs, CompoundAssignment) {
    TimeNs t = milliseconds(10);
    t += milliseconds(5);
    EXPECT_EQ(t, milliseconds(15));
    t -= milliseconds(20);
    EXPECT_EQ(t.ns(), -5'000'000);
}

TEST(TransmissionTime, MatchesHandComputation) {
    // 1500 bytes at 155 Mb/s: 1500*8/155e6 s = 77.419... us
    const TimeNs t = transmission_time(1500, 155'000'000);
    EXPECT_EQ(t.ns(), 1500LL * 8 * 1'000'000'000 / 155'000'000);
    // Integer nanoseconds truncate: within 1 ns of the exact value.
    EXPECT_NEAR(t.to_seconds(), 1500.0 * 8 / 155e6, 1e-9);
}

TEST(TransmissionTime, ScalesLinearlyInSize) {
    const auto t1 = transmission_time(600, 10'000'000);
    const auto t2 = transmission_time(1200, 10'000'000);
    EXPECT_EQ(t2.ns(), 2 * t1.ns());
}

}  // namespace
}  // namespace bb
